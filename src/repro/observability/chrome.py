"""Chrome ``trace_event`` export of execution traces.

Emits the JSON array format understood by ``chrome://tracing`` and
Perfetto: complete ("X") events with microsecond timestamps. Work items
(one per morsel, per worker thread) keep their worker's ``tid``; region
spans (one per ``run_region`` barrier, covering the whole pipeline) are
emitted on a dedicated lane (``pid`` :data:`REGION_PID`) so the two levels
render as separate tracks.
"""

from __future__ import annotations

import json
from typing import List, Optional

#: pid of per-morsel work-item events.
WORKER_PID = 0
#: pid of region (pipeline barrier) span events.
REGION_PID = 1

_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def chrome_trace_events(trace) -> List[dict]:
    """An :class:`~repro.execution.trace.ExecutionTrace` as a list of Chrome
    ``trace_event`` dicts (times converted from seconds to microseconds)."""
    events: List[dict] = []
    # Query/session attribution (stamped by the query service via
    # EngineConfig.query_id/session_id): merged into every span's args so
    # traces from concurrent clients remain attributable per query.
    attribution = {}
    if getattr(trace, "query_id", None) is not None:
        attribution["query_id"] = trace.query_id
    if getattr(trace, "session_id", None) is not None:
        attribution["session"] = trace.session_id
    for record in trace.records:
        events.append(
            {
                "name": record.operator,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": (record.end - record.start) * 1e6,
                "pid": WORKER_PID,
                "tid": record.thread,
                "args": {"phase": record.phase, **attribution},
            }
        )
    for span in getattr(trace, "regions", ()):
        events.append(
            {
                "name": f"region:{span.operator}",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "pid": REGION_PID,
                "tid": 0,
                "args": {"phase": span.phase, "items": span.items, **attribution},
            }
        )
    return events


def validate_trace_events(events) -> None:
    """Raise ``ValueError`` unless ``events`` is a list of well-formed
    ``trace_event`` objects (the schema the acceptance tests check)."""
    if not isinstance(events, list):
        raise ValueError("trace must be a JSON array of event objects")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"event {index} is missing {key!r}")
        if event["ph"] != "X":
            raise ValueError(f"event {index}: only complete events expected")
        if not isinstance(event["ts"], (int, float)) or not isinstance(
            event["dur"], (int, float)
        ):
            raise ValueError(f"event {index}: ts/dur must be numbers")


def write_chrome_trace(path: str, trace, query: Optional[str] = None) -> int:
    """Serialize ``trace`` to ``path`` as a Chrome trace JSON array;
    returns the number of events written."""
    events = chrome_trace_events(trace)
    validate_trace_events(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(events, handle, indent=1)
    return len(events)
