"""Chrome ``trace_event`` export of execution traces.

Emits the JSON array format understood by ``chrome://tracing`` and
Perfetto: complete ("X") events with microsecond timestamps. Work items
(one per morsel, per worker thread) keep their worker's ``tid``; region
spans (one per ``run_region`` barrier, covering the whole pipeline) are
emitted on a dedicated lane (``pid`` :data:`REGION_PID`) so the two levels
render as separate tracks.
"""

from __future__ import annotations

import json
from typing import List, Optional

#: pid of per-morsel work-item events.
WORKER_PID = 0
#: pid of region (pipeline barrier) span events.
REGION_PID = 1
#: pid of service-layer spans (admission-queue wait, admission reserve)
#: that happened *before* the engine started executing — a separate track
#: so queueing is never misread as operator time.
SERVICE_PID = 2

_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def chrome_trace_events(trace) -> List[dict]:
    """An :class:`~repro.execution.trace.ExecutionTrace` as a list of Chrome
    ``trace_event`` dicts (times converted from seconds to microseconds)."""
    events: List[dict] = []
    # Query/session attribution (stamped by the query service via
    # EngineConfig.query_id/session_id): merged into every span's args so
    # traces from concurrent clients remain attributable per query.
    attribution = {}
    if getattr(trace, "query_id", None) is not None:
        attribution["query_id"] = trace.query_id
    if getattr(trace, "session_id", None) is not None:
        attribution["session"] = trace.session_id
    for record in trace.records:
        events.append(
            {
                "name": record.operator,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": (record.end - record.start) * 1e6,
                "pid": WORKER_PID,
                "tid": record.thread,
                "args": {"phase": record.phase, **attribution},
            }
        )
    skew_by_phase = {}
    for entry in _morsel_skew(trace):
        skew_by_phase[(entry["operator"], entry["phase"])] = entry
    for span in getattr(trace, "regions", ()):
        args = {"phase": span.phase, "items": span.items, **attribution}
        skew = skew_by_phase.get((span.operator, span.phase))
        if skew is not None and skew["items"] >= 2:
            args["morsel_max_ms"] = skew["max_s"] * 1e3
            args["morsel_mean_ms"] = skew["mean_s"] * 1e3
            args["morsel_skew"] = skew["skew"]
            args["straggler_thread"] = skew["straggler_thread"]
        events.append(
            {
                "name": f"region:{span.operator}",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "pid": REGION_PID,
                "tid": 0,
                "args": args,
            }
        )
    # Service-layer waits precede execution: render them ending at t=0 so
    # the engine timeline (which starts at 0) reads as "after the queue".
    waits = (
        ("service:queue-wait", getattr(trace, "queue_wait_s", 0.0)),
        ("service:admission-reserve", getattr(trace, "admission_reserve_s", 0.0)),
    )
    offset = sum(duration for _name, duration in waits)
    for name, duration in waits:
        if duration <= 0.0:
            continue
        events.append(
            {
                "name": name,
                "ph": "X",
                "ts": -offset * 1e6,
                "dur": duration * 1e6,
                "pid": SERVICE_PID,
                "tid": 0,
                "args": dict(attribution),
            }
        )
        offset -= duration
    return events


def _morsel_skew(trace):
    from .analyze import morsel_skew

    return morsel_skew(trace)


def validate_trace_events(events) -> None:
    """Raise ``ValueError`` unless ``events`` is a list of well-formed
    ``trace_event`` objects (the schema the acceptance tests check)."""
    if not isinstance(events, list):
        raise ValueError("trace must be a JSON array of event objects")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"event {index} is missing {key!r}")
        if event["ph"] != "X":
            raise ValueError(f"event {index}: only complete events expected")
        if not isinstance(event["ts"], (int, float)) or not isinstance(
            event["dur"], (int, float)
        ):
            raise ValueError(f"event {index}: ts/dur must be numbers")


def write_chrome_trace(path: str, trace, query: Optional[str] = None) -> int:
    """Serialize ``trace`` to ``path`` as a Chrome trace JSON array;
    returns the number of events written."""
    events = chrome_trace_events(trace)
    validate_trace_events(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(events, handle, indent=1)
    return len(events)
