"""Always-on service telemetry: the capture layer behind the flight
recorder, the slow-query log, the plan-fingerprinted workload profiler,
and the health time series.

PR 2 made a *single query* observable (EXPLAIN ANALYZE, Chrome traces);
this module makes the *service* observable: once a query finishes, a
compact :class:`QueryRecord` survives it — normalized SQL, plan
fingerprint, parse/bind/translate/execute latency breakdown, rows, spill,
cache flags, max Q-error — and feeds three bounded sinks:

- the :class:`~repro.observability.events.FlightRecorder` ring buffer
  (incident reconstruction: what happened, in order, just now);
- the :class:`SlowQueryLog` (full records for queries over a latency
  threshold);
- :class:`~repro.observability.workload.WorkloadStats` (per-template
  streaming latency/Q-error aggregates, the adaptive re-planning signal).

A :class:`HealthSampler` thread owned by each
:class:`~repro.server.service.QueryService` additionally appends periodic
:class:`HealthSample` points (queue depth, in-flight memory, cache hit
rates, spill counters) into the telemetry's bounded health series.

Cost model: when :attr:`Telemetry.enabled` is ``False`` every entry point
returns after one attribute check, so a disabled server pays one branch
per query. When enabled, the per-query cost is one DAG-shape hash, a few
dict/deque updates under short locks, and (once per distinct prepared
plan) one cardinality estimate — all per *query*, never per row. Memory is
bounded everywhere: ring capacity, slow-log capacity, fingerprint-table
capacity, health-series capacity.

:data:`GLOBAL_TELEMETRY` is the process-wide instance
(:class:`~repro.api.Database` and the service default to it); tests and
benchmarks construct private instances. Environment overrides:
``REPRO_TELEMETRY=off`` disables the global instance,
``REPRO_TELEMETRY_SLOW_MS`` sets its slow-query threshold, and
``REPRO_TELEMETRY_DUMP_DIR`` makes query errors auto-dump the flight
recorder there.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional

from .events import FlightRecorder
from .workload import WorkloadStats, plan_fingerprint

__all__ = [
    "TelemetryConfig",
    "QueryRecord",
    "SlowQueryLog",
    "HealthSample",
    "HealthSampler",
    "Telemetry",
    "GLOBAL_TELEMETRY",
    "render_report",
]

#: Seconds between automatic error dumps (an error storm must not turn the
#: telemetry layer into a disk-filling loop).
ERROR_DUMP_MIN_INTERVAL_S = 5.0


class TelemetryConfig:
    """Bounds and thresholds of one :class:`Telemetry` instance."""

    def __init__(
        self,
        enabled: Optional[bool] = None,
        ring_capacity: int = 4096,
        slow_query_threshold_s: Optional[float] = None,
        slowlog_capacity: int = 128,
        max_fingerprints: int = 512,
        health_capacity: int = 512,
        max_sql_chars: int = 500,
        dump_on_error_dir: Optional[str] = None,
    ):
        if enabled is None:
            enabled = os.environ.get("REPRO_TELEMETRY", "on") != "off"
        if slow_query_threshold_s is None:
            slow_query_threshold_s = (
                float(os.environ.get("REPRO_TELEMETRY_SLOW_MS", "1000")) / 1000.0
            )
        if dump_on_error_dir is None:
            dump_on_error_dir = os.environ.get("REPRO_TELEMETRY_DUMP_DIR")
        self.enabled = enabled
        self.ring_capacity = ring_capacity
        #: Queries at or above this end-to-end latency are retained in full
        #: detail in the slow-query log.
        self.slow_query_threshold_s = slow_query_threshold_s
        self.slowlog_capacity = slowlog_capacity
        self.max_fingerprints = max_fingerprints
        self.health_capacity = health_capacity
        #: SQL stored in records/templates is truncated to this length.
        self.max_sql_chars = max_sql_chars
        #: When set, a ``query.error`` record dumps the flight recorder
        #: into this directory (rate-limited).
        self.dump_on_error_dir = dump_on_error_dir


class QueryRecord:
    """The audit record of one finished (or failed) query."""

    __slots__ = (
        "query_id", "session_id", "sql", "fingerprint", "engine", "status",
        "error", "rows", "plan_cache_hit", "result_cache_hit",
        "parse_bind_s", "translate_s", "execute_s", "total_s",
        "queue_wait_s", "spill_bytes_written", "spill_bytes_read",
        "max_q_error", "morsel_skew", "straggler", "wall",
    )

    def __init__(
        self,
        query_id: str,
        sql: str,
        fingerprint: str,
        engine: str = "lolepop",
        session_id: str = "-",
        status: str = "ok",
        error: Optional[str] = None,
        rows: int = 0,
        plan_cache_hit: bool = False,
        result_cache_hit: bool = False,
        parse_bind_s: float = 0.0,
        translate_s: float = 0.0,
        execute_s: float = 0.0,
        total_s: float = 0.0,
        queue_wait_s: float = 0.0,
        spill_bytes_written: int = 0,
        spill_bytes_read: int = 0,
        max_q_error: Optional[float] = None,
        morsel_skew: Optional[float] = None,
        straggler: Optional[str] = None,
    ):
        self.query_id = query_id
        self.session_id = session_id
        self.sql = sql
        self.fingerprint = fingerprint
        self.engine = engine
        #: ``ok`` | ``error`` | ``cancelled``.
        self.status = status
        self.error = error
        self.rows = rows
        self.plan_cache_hit = plan_cache_hit
        self.result_cache_hit = result_cache_hit
        #: Latency breakdown, seconds. ``parse_bind_s`` is ~0 on a
        #: plan-cache hit; ``translate_s`` is ~0 on a DAG-template reuse.
        self.parse_bind_s = parse_bind_s
        self.translate_s = translate_s
        self.execute_s = execute_s
        self.total_s = total_s
        self.queue_wait_s = queue_wait_s
        self.spill_bytes_written = spill_bytes_written
        self.spill_bytes_read = spill_bytes_read
        #: Worst node-level Q-error when a profile was collected, else the
        #: root-level Q-error from the cached plan estimate; ``None`` when
        #: no estimate exists (DDL, EXPLAIN, estimator failure).
        self.max_q_error = max_q_error
        #: Worst per-phase morsel skew (max/mean work-item duration) and
        #: the ``"operator/phase"`` that caused it, when a trace was
        #: collected; ``None`` otherwise (the serving default).
        self.morsel_skew = morsel_skew
        self.straggler = straggler
        self.wall = time.time()

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class SlowQueryLog:
    """Bounded log of full :class:`QueryRecord` detail for slow queries."""

    def __init__(self, capacity: int = 128, threshold_s: float = 1.0):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be positive")
        self.capacity = capacity
        self.threshold_s = threshold_s
        self._records: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Queries that crossed the threshold (including rotated-out ones).
        self.observed = 0

    def observe(self, record: QueryRecord) -> bool:
        """Retain ``record`` if it is slow; returns whether it was."""
        if record.total_s < self.threshold_s:
            return False
        with self._lock:
            self.observed += 1
            self._records.append(record)
        return True

    def snapshot(self, last: Optional[int] = None) -> List[dict]:
        """Retained records as dicts, oldest first."""
        with self._lock:
            records = list(self._records)
        if last is not None:
            records = records[-last:]
        return [record.to_dict() for record in records]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "threshold_s": self.threshold_s,
                "retained": len(self._records),
                "observed": self.observed,
            }

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self.observed = 0


class HealthSample(dict):
    """One point of the service health time series (a plain dict subclass
    so it serializes directly; keys documented in :meth:`HealthSampler.sample_now`)."""


class HealthSampler:
    """Background sampler of one query service's health gauges.

    Owned by a :class:`~repro.server.service.QueryService`; every
    ``interval_s`` it appends one :class:`HealthSample` into the telemetry's
    bounded health series. ``sample_now()`` takes one sample synchronously
    (tests, the shell's ``.health``). The thread is a daemon and stops at
    service shutdown.
    """

    def __init__(self, service, telemetry: "Telemetry", interval_s: float = 1.0):
        self.service = service
        self.telemetry = telemetry
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def sample_now(self) -> HealthSample:
        """Take one sample and append it to the telemetry health series."""
        service = self.service
        sample = HealthSample(
            ts=time.monotonic(),
            wall=time.time(),
            queue_depth=service.admission.queue_depth,
            running=service.admission.running,
            reserved_bytes=service.admission.reserved_bytes,
            memory_budget_bytes=service.config.memory_budget_bytes,
        )
        if service.db.plan_cache is not None:
            sample["plan_cache_hit_rate"] = service.db.plan_cache.hit_rate
            sample["plan_cache_size"] = len(service.db.plan_cache)
        if service.result_cache is not None:
            sample["result_cache_hit_rate"] = service.result_cache.hit_rate
            sample["result_cache_size"] = len(service.result_cache)
        # Spill totals are fed into the process-wide registry by the engine
        # (see LolepopEngine._feed_global_metrics), not the service's own.
        from .metrics import GLOBAL_METRICS

        sample["spill_bytes_written"] = GLOBAL_METRICS.counter(
            "spill.bytes_written"
        ).value
        self.telemetry.record_health(sample)
        return sample

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None or self.interval_s <= 0:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-health-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.interval_s + 1.0)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_now()
            except Exception:  # noqa: BLE001 — the sampler must never kill
                pass  # the service; a failed sample is just a gap.


class Telemetry:
    """One telemetry domain: recorder + slow log + workload + health."""

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config or TelemetryConfig()
        self.enabled = self.config.enabled
        self.recorder = FlightRecorder(self.config.ring_capacity)
        self.slowlog = SlowQueryLog(
            self.config.slowlog_capacity, self.config.slow_query_threshold_s
        )
        self.workload = WorkloadStats(self.config.max_fingerprints)
        self._health: deque = deque(maxlen=self.config.health_capacity)
        self._health_lock = threading.Lock()
        self._last_error_dump = 0.0
        #: Total query records observed (all of them, not just slow ones).
        self.queries_recorded = 0
        #: Zero-arg callable returning the materialization manager's stats
        #: dict, installed via :meth:`attach_reuse`; ``None`` = no manager.
        self._reuse_stats = None

    # ------------------------------------------------------------------
    def attach_reuse(self, provider) -> None:
        """Install the materialization manager's stats provider so
        :meth:`summary` / :meth:`report` carry a ``reuse`` block."""
        self._reuse_stats = provider

    def reuse_snapshot(self) -> Optional[dict]:
        """The manager's current stats, or ``None`` when no manager is
        attached (or its provider failed)."""
        if self._reuse_stats is None:
            return None
        try:
            return dict(self._reuse_stats())
        except Exception:  # noqa: BLE001 — diagnostics never raise
            return None

    # ------------------------------------------------------------------
    # Enablement
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def disabled(self):
        """Temporarily disable recording (timed benchmark sections)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = previous

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields) -> None:
        """Append one flight-recorder event (no-op when disabled)."""
        if not self.enabled:
            return
        self.recorder.record(kind, **fields)

    def truncate_sql(self, sql: str) -> str:
        limit = self.config.max_sql_chars
        return sql if len(sql) <= limit else sql[: limit - 3] + "..."

    def record_query(self, record: QueryRecord) -> None:
        """Feed one finished query into every sink (no-op when disabled)."""
        if not self.enabled:
            return
        self.queries_recorded += 1
        is_error = record.status == "error"
        kind = {
            "ok": "query.finish",
            "error": "query.error",
            "cancelled": "query.cancel",
        }.get(record.status, "query.finish")
        self.recorder.record(
            kind,
            query_id=record.query_id,
            session_id=record.session_id,
            fingerprint=record.fingerprint,
            engine=record.engine,
            rows=record.rows,
            total_s=record.total_s,
            plan_cache_hit=record.plan_cache_hit,
            result_cache_hit=record.result_cache_hit,
            **({"error": record.error} if record.error else {}),
        )
        if record.spill_bytes_written or record.spill_bytes_read:
            self.recorder.record(
                "spill",
                query_id=record.query_id,
                bytes_written=record.spill_bytes_written,
                bytes_read=record.spill_bytes_read,
            )
        self.workload.observe(
            record.fingerprint,
            record.sql,
            record.engine,
            record.total_s,
            q_error=record.max_q_error,
            error=is_error,
            plan_cache_hit=record.plan_cache_hit,
            spill_bytes=record.spill_bytes_written,
            rows=record.rows,
        )
        self.slowlog.observe(record)
        if is_error and self.config.dump_on_error_dir:
            self._dump_on_error(record)

    def record_health(self, sample: Dict) -> None:
        if not self.enabled:
            return
        with self._health_lock:
            self._health.append(dict(sample))

    # ------------------------------------------------------------------
    def _dump_on_error(self, record: QueryRecord) -> None:
        now = time.monotonic()
        if now - self._last_error_dump < ERROR_DUMP_MIN_INTERVAL_S:
            return
        self._last_error_dump = now
        try:
            directory = self.config.dump_on_error_dir
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory, f"flight_{record.query_id}_{int(time.time())}.json"
            )
            self.recorder.dump_json(path)
        except OSError:
            pass  # diagnostics must never take the query path down

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health_snapshot(self, last: Optional[int] = None) -> List[dict]:
        with self._health_lock:
            samples = list(self._health)
        if last is not None:
            samples = samples[-last:]
        return samples

    def report(
        self, top: int = 20, drift_threshold: float = 2.0
    ) -> dict:
        """One JSON-serializable service-telemetry report."""
        health = self.health_snapshot()
        return {
            "schema": 1,
            "enabled": self.enabled,
            "created_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "queries_recorded": self.queries_recorded,
            "flight_recorder": self.recorder.stats(),
            "slow_queries": {
                **self.slowlog.stats(),
                "records": self.slowlog.snapshot(),
            },
            "workload": self.workload.snapshot(top=top),
            "drifting": [
                {
                    "fingerprint": fingerprint,
                    "drift_ratio": entry.drift_ratio(),
                    "q_recent": entry.q_recent,
                    "q_baseline_mean": entry.q_baseline.mean,
                    "count": entry.count,
                    "example_sql": entry.example_sql,
                }
                for fingerprint, entry in self.workload.drifting_templates(
                    drift_threshold
                )
            ],
            "health": {
                "capacity": self.config.health_capacity,
                "samples": health,
            },
            "reuse": self.reuse_snapshot(),
        }

    def summary(self) -> dict:
        """Compact roll-up (embedded in benchmark snapshots)."""
        recorder = self.recorder.stats()
        summary = {
            "queries_recorded": self.queries_recorded,
            "events_recorded": recorder["recorded"],
            "events_dropped": recorder["dropped"],
            "fingerprints": len(self.workload),
            "fingerprints_evicted": self.workload.evicted,
            "slow_queries": self.slowlog.stats()["observed"],
            "health_samples": len(self.health_snapshot()),
        }
        reuse = self.reuse_snapshot()
        if reuse is not None:
            summary["reuse"] = reuse
        return summary

    def dump(self, path: str) -> dict:
        """Write ``{"report": ..., "events": [...]}`` to ``path`` (the full
        state :mod:`tools.telemetry_report` renders offline)."""
        doc = {"report": self.report(), "events": self.recorder.snapshot()}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=1)
        return doc

    def reset(self) -> None:
        self.recorder.reset()
        self.slowlog.reset()
        self.workload.reset()
        with self._health_lock:
            self._health.clear()
        self.queries_recorded = 0


#: The process-wide telemetry domain (always on unless
#: ``REPRO_TELEMETRY=off``): :class:`~repro.api.Database` instances and the
#: query service feed it by default, the shell's ``.health`` / ``.slowlog``
#: / ``.fingerprints`` read it.
GLOBAL_TELEMETRY = Telemetry()


# ----------------------------------------------------------------------
# Text rendering (the shell and tools/telemetry_report.py)
# ----------------------------------------------------------------------
def _fmt_ms(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds * 1000:.1f}ms"


def render_report(doc: dict, width: int = 100) -> str:
    """Render a :meth:`Telemetry.report` document as text."""
    lines: List[str] = []
    recorder = doc["flight_recorder"]
    lines.append(
        f"service telemetry — {doc['queries_recorded']} queries recorded "
        f"({'enabled' if doc.get('enabled', True) else 'disabled'})"
    )
    lines.append(
        f"flight recorder: {recorder['retained']}/{recorder['capacity']} "
        f"events retained, {recorder['recorded']} recorded, "
        f"{recorder['dropped']} dropped"
    )
    for kind, count in recorder.get("by_kind", {}).items():
        lines.append(f"  {kind:<20} {count}")

    slow = doc["slow_queries"]
    lines.append(
        f"slow queries (>= {slow['threshold_s'] * 1000:.0f}ms): "
        f"{slow['observed']} observed, {slow['retained']} retained"
    )
    for record in slow["records"][-10:]:
        lines.append(
            f"  {record['query_id']:<8} {_fmt_ms(record['total_s']):>10} "
            f"(parse {_fmt_ms(record['parse_bind_s'])}, "
            f"translate {_fmt_ms(record['translate_s'])}, "
            f"execute {_fmt_ms(record['execute_s'])}) "
            f"rows={record['rows']} fp={record['fingerprint']} "
            f"{record['sql'][:40]!r}"
        )

    workload = doc["workload"]
    lines.append(
        f"workload: {workload['tracked']}/{workload['capacity']} "
        f"fingerprints tracked, {workload['evicted']} evicted"
    )
    for entry in workload["templates"][:15]:
        q = entry["q_error"]
        q_text = (
            f"q-mean={q['mean']:.2f} q-max={entry['q_max']:.2f}"
            if q["count"]
            else "q=?"
        )
        latency = entry["latency"]
        quantiles = latency.get("quantiles", {})
        lines.append(
            f"  {entry['fingerprint']} n={entry['count']:<6} "
            f"p50~{_fmt_ms(quantiles.get('p50'))} "
            f"p95~{_fmt_ms(quantiles.get('p95'))} "
            f"{q_text} {entry['example_sql'][:45]!r}"
        )

    drifting = doc.get("drifting", [])
    if drifting:
        lines.append(f"drifting templates ({len(drifting)}):")
        for entry in drifting:
            lines.append(
                f"  {entry['fingerprint']} drift x{entry['drift_ratio']:.2f} "
                f"(baseline {entry['q_baseline_mean']:.2f} -> recent "
                f"{entry['q_recent']:.2f}, n={entry['count']}) "
                f"{entry['example_sql'][:40]!r}"
            )
    else:
        lines.append("drifting templates: none")

    reuse = doc.get("reuse")
    if reuse is not None:
        lines.append(
            f"reuse: hit-rate={reuse.get('hit_rate', 0.0):.2f} "
            f"({reuse.get('hits', 0)} hits / {reuse.get('misses', 0)} misses), "
            f"{reuse.get('resident_bytes', 0)}B resident in "
            f"{reuse.get('buffers', 0)} buffers + {reuse.get('views', 0)} views, "
            f"{reuse.get('evictions', 0)} evicted, "
            f"maintenance {_fmt_ms(reuse.get('maintenance_s', 0.0))} "
            f"over {reuse.get('maintenance_events', 0)} delta(s)"
        )

    health = doc["health"]["samples"]
    lines.append(f"health samples: {len(health)}")
    for sample in health[-5:]:
        plan_rate = sample.get("plan_cache_hit_rate")
        rate_text = "" if plan_rate is None else f" plan-hit={plan_rate:.2f}"
        lines.append(
            f"  queue={sample['queue_depth']} running={sample['running']} "
            f"reserved={sample['reserved_bytes']:.0f}B"
            f"{rate_text} spillW={sample.get('spill_bytes_written', 0):.0f}B"
        )
    return "\n".join(line[:width] for line in lines)
