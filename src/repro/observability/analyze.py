"""EXPLAIN ANALYZE rendering: the executed LOLEPOP DAG annotated with
actual vs. estimated cardinalities and per-operator time share.

Estimates walk each DAG with simple propagation rules mirroring how the
operators transform cardinality (the DAG-level analogue of
:class:`~repro.logical.cardinality.CardinalityEstimator`'s plan rules):
SOURCE nodes estimate their relational pipeline, HASHAGG/ORDAGG estimate
group counts against the region's input plan, buffer movers (PARTITION /
SORT / MERGE / WINDOW / SCAN) pass their input estimate through, COMBINE
takes the max (join mode) or sum (union mode) of its inputs.

The Q-error of a node is ``max(est/actual, actual/est)`` (both clamped to
one row) — the standard estimate-quality measure; the summary line reports
the worst node, which is where the optimizer's model is most wrong.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..logical import Aggregate, Limit, LogicalPlan, Sort, Window
from ..lolepop.base import Dag, SourceOp
from ..lolepop.combine_op import CombineOp
from ..lolepop.hashagg_op import HashAggOp
from ..lolepop.merge_op import MergeOp
from ..lolepop.ordagg_op import OrdAggOp
from ..lolepop.partition_op import PartitionOp
from ..lolepop.scan_op import ScanOp
from ..lolepop.sort_op import SortOp
from ..lolepop.window_op import WindowOp


def _region_input_plan(plan: Optional[LogicalPlan]) -> Optional[LogicalPlan]:
    """The logical plan feeding a statistics region's compute operators."""
    node = plan
    while isinstance(node, Limit):
        node = node.child
    if isinstance(node, (Aggregate, Window, Sort)):
        return node.child
    return node


def estimate_dag_rows(dag: Dag, estimator) -> Dict[int, Optional[float]]:
    """Estimated output rows per DAG node, keyed by ``id(node)``.

    ``estimator`` is a
    :class:`~repro.logical.cardinality.CardinalityEstimator`; nodes whose
    estimate cannot be derived map to ``None``.
    """
    context = _region_input_plan(getattr(dag, "region_plan", None))
    estimates: Dict[int, Optional[float]] = {}
    for node in dag.topological_order():
        estimates[id(node)] = _estimate_node(node, context, estimator, estimates)
    return estimates


def _estimate_node(node, context, estimator, estimates) -> Optional[float]:
    def input_estimate() -> Optional[float]:
        if not node.inputs:
            return None
        return estimates.get(id(node.inputs[0]))

    try:
        if isinstance(node, SourceOp):
            plan = getattr(node, "plan", None)
            return estimator.rows(plan) if plan is not None else None
        if isinstance(node, HashAggOp):
            if context is None:
                return None
            return estimator.group_count(context, node.key_names)
        if isinstance(node, OrdAggOp):
            if context is None:
                return None
            return estimator.group_count(context, node.key_names)
        if isinstance(node, CombineOp):
            inputs = [estimates.get(id(i)) for i in node.inputs]
            known = [e for e in inputs if e is not None]
            if not known:
                return None
            return sum(known) if node.mode == "union" else max(known)
        if isinstance(node, ScanOp):
            estimate = input_estimate()
            if estimate is not None and node.limit is not None:
                estimate = float(min(estimate, node.limit))
            return estimate
        if isinstance(node, (PartitionOp, SortOp, MergeOp, WindowOp)):
            return input_estimate()
    except Exception:
        return None
    return input_estimate()


def q_error(estimate: Optional[float], actual: int) -> Optional[float]:
    """max(est/actual, actual/est), both sides clamped to >= 1 row."""
    if estimate is None:
        return None
    est = max(1.0, float(estimate))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


def profile_max_q_error(profile, estimator) -> Optional[float]:
    """The worst node-level Q-error across every DAG of a
    :class:`~repro.observability.metrics.QueryProfile` — the same number
    EXPLAIN ANALYZE's summary line reports, exposed for the telemetry
    layer's per-query :class:`~repro.observability.telemetry.QueryRecord`.
    Returns ``None`` when no node has both an estimate and stats.
    """
    worst: Optional[float] = None
    for dag in profile.dags:
        estimates = estimate_dag_rows(dag, estimator)
        for node in dag.topological_order():
            stats = getattr(node, "stats", None)
            if stats is None:
                continue
            node_q = q_error(estimates.get(id(node)), stats.rows_out)
            if node_q is not None and (worst is None or node_q > worst):
                worst = node_q
    return worst


def morsel_skew(trace) -> List[dict]:
    """Per-(operator, phase) morsel-skew metrics derived from an
    :class:`~repro.execution.trace.ExecutionTrace`.

    For each parallel phase the skew ratio ``max/mean`` of per-morsel
    durations says how badly one straggling work item stretched the
    barrier: 1.0 is perfectly balanced, large values mean the phase's
    makespan was set by a single morsel. Each entry carries the straggler's
    thread id so the slow-query log can attribute the stall. Sorted worst
    skew first. Returns ``[]`` for ``None`` / empty traces.
    """
    if trace is None or not getattr(trace, "records", None):
        return []
    groups: Dict[tuple, List] = {}
    for record in trace.records:
        groups.setdefault((record.operator, record.phase), []).append(record)
    out: List[dict] = []
    for (operator, phase), records in groups.items():
        durations = [r.duration for r in records]
        worst = max(records, key=lambda r: r.duration)
        max_s = worst.duration
        mean_s = sum(durations) / len(durations)
        out.append(
            {
                "operator": operator,
                "phase": phase,
                "items": len(records),
                "max_s": max_s,
                "mean_s": mean_s,
                "skew": max_s / mean_s if mean_s > 0 else 1.0,
                "straggler_thread": worst.thread,
            }
        )
    out.sort(key=lambda entry: (-entry["skew"], entry["operator"]))
    return out


def render_morsel_skew(trace, limit: int = 3, min_skew: float = 1.5) -> List[str]:
    """Human-readable lines for the worst-skewed parallel phases (only
    phases with more than one morsel and skew >= ``min_skew`` — a serial
    phase cannot be skewed)."""
    lines: List[str] = []
    for entry in morsel_skew(trace):
        if entry["items"] < 2 or entry["skew"] < min_skew:
            continue
        lines.append(
            f"{entry['operator']}/{entry['phase']}: skew {entry['skew']:.2f} "
            f"(max {entry['max_s'] * 1000:.2f}ms / mean "
            f"{entry['mean_s'] * 1000:.2f}ms over {entry['items']} morsels, "
            f"straggler T{entry['straggler_thread']})"
        )
        if len(lines) >= limit:
            break
    return lines


def _format_bytes(num: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(num) < 1024.0 or unit == "GB":
            return f"{num:.0f}{unit}" if unit == "B" else f"{num:.1f}{unit}"
        num /= 1024.0
    return f"{num:.1f}GB"


def render_analyze(result, catalog, config, estimator=None) -> str:
    """Render ``EXPLAIN ANALYZE`` output for an executed query.

    ``result`` is a :class:`~repro.lolepop.engine.QueryResult` produced with
    ``collect_metrics=True`` (so every DAG node carries
    :class:`~repro.observability.metrics.OperatorStats`). ``estimator``
    lets the caller supply a calibrated
    :class:`~repro.logical.cardinality.CardinalityEstimator` (one carrying
    feedback-store overrides); without one a fresh uncalibrated estimator
    is built from the catalog.
    """
    from ..logical.cardinality import CardinalityEstimator
    from ..stats import StatisticsCache

    profile = result.profile
    if profile is None:
        raise ValueError("EXPLAIN ANALYZE requires a collected profile")
    if estimator is None:
        estimator = CardinalityEstimator(StatisticsCache(catalog))
    kind = "measured" if config.execution_mode == "parallel" else "simulated"
    lines: List[str] = [
        f"EXPLAIN ANALYZE (lolepop, {config.num_threads} threads, "
        f"{config.execution_mode} mode)"
    ]
    total_time = profile.total_operator_time() or 1.0
    worst: Optional[tuple] = None  # (q, label)
    for dag_index, dag in enumerate(profile.dags):
        from ..lolepop.verify import derive_properties

        estimates = estimate_dag_rows(dag, estimator)
        derived = derive_properties(dag)
        order = dag.topological_order()
        ids = {id(node): i for i, node in enumerate(order)}
        if len(profile.dags) > 1:
            lines.append(f"-- region {dag_index} --")
        for node in order:
            stats = getattr(node, "stats", None)
            estimate = estimates.get(id(node))
            deps = ",".join(f"#{ids[id(i)]}" for i in node.inputs)
            describe = f" [{node.describe()}]" if node.describe() else ""
            head = f"#{ids[id(node)]} {node.name()}{describe}"
            if deps:
                head += f" <- {deps}"
            if stats is None:
                lines.append(head + "  (not executed)")
                continue
            parts = [f"rows={stats.rows_out}"]
            parts.append(
                "est=?" if estimate is None else f"est={estimate:.0f}"
            )
            node_q = q_error(estimate, stats.rows_out)
            if node_q is not None:
                parts.append(f"q={node_q:.2f}")
                label = f"#{ids[id(node)]} {node.name()}"
                if len(profile.dags) > 1:
                    label = f"region {dag_index} {label}"
                if worst is None or node_q > worst[0]:
                    worst = (node_q, label)
            parts.append(f"time={stats.wall_time / total_time * 100:.1f}%")
            parts.append(f"work={stats.wall_time * 1000:.2f}ms")
            if stats.peak_buffer_bytes:
                parts.append(f"buf={_format_bytes(stats.peak_buffer_bytes)}")
            if stats.buffer_reuse_hits:
                parts.append(f"reuse={stats.buffer_reuse_hits}")
            if stats.sort_elisions:
                parts.append(f"elided={stats.sort_elisions}")
            if stats.spill_bytes_written or stats.spill_bytes_read:
                parts.append(
                    f"spillW={_format_bytes(stats.spill_bytes_written)}"
                    f" spillR={_format_bytes(stats.spill_bytes_read)}"
                )
            for key, value in sorted(stats.extra.items()):
                parts.append(f"{key}={value}")
            props = derived.get(id(node))
            note = props.render() if props is not None else ""
            if note:
                parts.append("{" + note + "}")
            lines.append(head + "  " + " ".join(parts))

    if worst is not None:
        lines.append(f"max Q-error: {worst[0]:.2f} at {worst[1]}")
    else:
        lines.append("max Q-error: n/a (no estimates)")

    reuse_total = sum(
        1 for entry in profile.rewrites if entry.startswith("buffer-reuse")
    )
    elide_total = sum(
        stats.sort_elisions for *_rest, stats in profile.operator_stats()
    )
    spill_w = profile.counters.get("spill.bytes_written", 0)
    spill_r = profile.counters.get("spill.bytes_read", 0)
    lines.append(
        f"buffer-reuse: {reuse_total}  sort-elisions: {elide_total}  "
        f"spill: {_format_bytes(spill_w)} written / {_format_bytes(spill_r)} read"
    )
    if profile.rewrites:
        lines.append("rewrites:")
        for entry in profile.rewrites:
            cost = entry.render_cost() if hasattr(entry, "render_cost") else ""
            lines.append(f"  {entry}" + (f"  {cost}" if cost else ""))
    skew_lines = render_morsel_skew(result.trace)
    if skew_lines:
        lines.append("morsel skew (top phases):")
        lines.extend(f"  {line}" for line in skew_lines)
    for name in sorted(profile.counters):
        if not name.startswith("spill."):
            lines.append(f"counter {name}: {profile.counters[name]:g}")
    lines.append(
        f"total work {result.serial_time * 1000:.2f} ms, "
        f"{kind} makespan {result.simulated_time * 1000:.2f} ms"
    )
    return "\n".join(lines)
