"""Structured optimizer/translator provenance.

Every plan decision — an optimizer pass that fired, a translator
buffer-reuse substitution, a cost-based strategy pick — is recorded as one
:class:`RewriteEvent` on the owning :attr:`Dag.rewrites
<repro.lolepop.base.Dag.rewrites>` log instead of an opaque string.

A :class:`RewriteEvent` *is* a ``str`` (its value is the human-readable
rewrite text every existing consumer renders), subclassed to carry the
machine-checkable fields regression attribution needs: the pass name, the
names of the affected DAG nodes, and the estimated plan cost before/after
the rewrite (priced by :func:`repro.costmodel.dag_cost`). Serialization
through ``QueryProfile.to_dict`` therefore stays backward compatible — the
``rewrites`` list remains a list of strings — while a parallel
``rewrite_events`` list exposes the structure (see
:func:`rewrite_events_to_dicts`).

``tools/lint_engine.py`` rule R5 enforces that engine code appends through
:meth:`Dag.record_rewrite <repro.lolepop.base.Dag.record_rewrite>` (which
constructs events), never a bare string.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

__all__ = ["RewriteEvent", "rewrite_events_to_dicts"]


class RewriteEvent(str):
    """One recorded plan-rewrite decision.

    The string value is the legacy display text (``"elide_redundant_sorts
    x2"``, ``"buffer-reuse: ..."``); the attributes carry the structure:

    - ``pass_name`` — the pass / decision family that fired;
    - ``detail`` — free-text qualifier (counts, reuse-spec summary);
    - ``nodes`` — ``describe()``-style names of the DAG nodes the rewrite
      touched (removed, substituted, or rewired), possibly empty;
    - ``cost_before`` / ``cost_after`` — estimated whole-DAG cost (see
      :func:`repro.costmodel.dag_cost`) around the rewrite, ``None`` for
      construction-time decisions where the "before" DAG never existed.

    (No ``__slots__``: CPython forbids nonempty slots on subclasses of
    variable-length builtins like ``str``.)
    """

    def __new__(
        cls,
        text: str,
        pass_name: Optional[str] = None,
        detail: str = "",
        nodes: Iterable[str] = (),
        cost_before: Optional[float] = None,
        cost_after: Optional[float] = None,
    ) -> "RewriteEvent":
        event = super().__new__(cls, text)
        event.pass_name = pass_name if pass_name is not None else _infer_pass(text)
        event.detail = detail
        event.nodes = tuple(nodes)
        event.cost_before = cost_before
        event.cost_after = cost_after
        return event

    # ------------------------------------------------------------------
    @property
    def cost_delta(self) -> Optional[float]:
        """``cost_after - cost_before`` (negative = the rewrite made the
        plan cheaper), or ``None`` when either side is unknown."""
        if self.cost_before is None or self.cost_after is None:
            return None
        return self.cost_after - self.cost_before

    def to_dict(self) -> dict:
        out: dict = {
            "text": str(self),
            "pass": self.pass_name,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.nodes:
            out["nodes"] = list(self.nodes)
        if self.cost_before is not None:
            out["cost_before"] = self.cost_before
        if self.cost_after is not None:
            out["cost_after"] = self.cost_after
        delta = self.cost_delta
        if delta is not None:
            out["cost_delta"] = delta
        return out

    def render_cost(self) -> str:
        """``"Δcost -12345 (67890 -> 55545)"`` or ``""`` without costs."""
        delta = self.cost_delta
        if delta is None:
            return ""
        return (
            f"Δcost {delta:+.0f} "
            f"({self.cost_before:.0f} -> {self.cost_after:.0f})"
        )

    # ------------------------------------------------------------------
    # str subclass plumbing: copy.copy / pickling used by Dag.clone paths
    # must preserve the structured fields, not decay to a plain str.
    def __copy__(self) -> "RewriteEvent":
        return self

    def __deepcopy__(self, memo) -> "RewriteEvent":
        return self

    def __reduce__(self):
        return (
            _rebuild_event,
            (
                str(self), self.pass_name, self.detail, self.nodes,
                self.cost_before, self.cost_after,
            ),
        )


def _rebuild_event(
    text: str,
    pass_name: Optional[str],
    detail: str,
    nodes: Tuple[str, ...],
    cost_before: Optional[float],
    cost_after: Optional[float],
) -> RewriteEvent:
    return RewriteEvent(
        text, pass_name=pass_name, detail=detail, nodes=nodes,
        cost_before=cost_before, cost_after=cost_after,
    )


def _infer_pass(text: str) -> str:
    """Best-effort pass name from a display text: the prefix before the
    first ``:`` or the first token (``"elide_redundant_sorts x2"`` →
    ``"elide_redundant_sorts"``)."""
    head = text.split(":", 1)[0]
    return head.split(" ", 1)[0] if " " in head and ":" not in text else head


def rewrite_events_to_dicts(rewrites: Iterable[str]) -> List[dict]:
    """Structured view of a rewrites log. Plain-string entries (none should
    exist after lint rule R5, but profiles loaded from old JSON may carry
    them) degrade to ``{"text": ...}``."""
    out: List[dict] = []
    for entry in rewrites:
        if isinstance(entry, RewriteEvent):
            out.append(entry.to_dict())
        else:
            out.append({"text": str(entry), "pass": _infer_pass(str(entry))})
    return out
