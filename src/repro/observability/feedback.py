"""Persistent cardinality-feedback store: the closed Q-error loop.

Every executed query contributes *actuals* — observed output rows per plan
operator — keyed by ``(plan fingerprint, operator position)``. The store
persists them as one small schema-validated JSON file per fingerprint
under a feedback directory (``REPRO_FEEDBACK_DIR`` or the ``Database``'s
``feedback_dir``), survives restarts, and feeds two consumers:

- :class:`CalibrationOverrides` — a live view consulted by
  :class:`~repro.logical.cardinality.CardinalityEstimator`: when an
  operator's *plan signature* (a stable recursive rendering of the logical
  subplan, literals included) has enough observed executions, the smoothed
  actual row count overrides the statistics-model estimate.
- the drift→replan loop in :class:`repro.api.Database`: when the workload
  profiler flags a template's Q-error as drifting, the matching plan-cache
  entry is discarded so the next execution re-plans — now against the
  calibrated estimator — closing the loop the
  :class:`~repro.observability.workload.WorkloadStats` drift detector
  only *reported* before.

Durability model: actuals are advisory, so writes are throttled (first
observation per fingerprint flushes immediately, then every
``flush_interval``-th) and atomic (temp file + ``os.replace``). A corrupt
or partial file is tolerated on load — skipped with a
``feedback.load_error`` flight-recorder event — and the on-disk footprint
is bounded by ``max_files`` with least-recently-updated eviction
(``feedback.evict`` events).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "FeedbackStore",
    "CalibrationOverrides",
    "plan_signature",
    "group_signature",
    "profile_observations",
]

SCHEMA_VERSION = 1

#: Exponential smoothing factor for actual row counts (matches the
#: workload profiler's recency bias).
ACTUAL_ALPHA = 0.3

_FILE_PREFIX = "fb_"
_FILE_SUFFIX = ".json"

#: Per-fingerprint operator cap: a file stays a few KB no matter how many
#: regions a query compiles to.
MAX_OPERATORS_PER_FINGERPRINT = 64


def plan_signature(plan) -> str:
    """Stable recursive signature of a logical plan: each node's
    ``label()`` (which renders predicates, keys, and literal values) over
    the child signatures. Two queries with the same plan shape *and the
    same constants* share a signature — deliberately, since selectivity
    feedback is only transferable at that granularity."""
    children = getattr(plan, "children", ())
    label = plan.label()
    if not children:
        return label
    inner = ",".join(plan_signature(child) for child in children)
    return f"{label}({inner})"


def group_signature(plan, keys: Iterable[str]) -> str:
    """Signature of a group-count estimate: the input plan plus the key
    set (order-insensitive — ``GROUP BY a, b`` and ``GROUP BY b, a``
    produce the same count)."""
    return f"group[{','.join(sorted(keys))}]({plan_signature(plan)})"


def _operator_signature(node, context) -> Optional[str]:
    """The calibration signature of one executed LOLEPOP, when its output
    cardinality maps onto an estimator question (SOURCE → plan rows,
    HASHAGG/ORDAGG → group count); ``None`` for pure buffer movers."""
    from ..lolepop.base import SourceOp
    from ..lolepop.hashagg_op import HashAggOp
    from ..lolepop.ordagg_op import OrdAggOp

    if isinstance(node, SourceOp) and getattr(node, "plan", None) is not None:
        return plan_signature(node.plan)
    if isinstance(node, (HashAggOp, OrdAggOp)) and context is not None:
        return group_signature(context, node.key_names)
    return None


def profile_observations(profile, estimator) -> List[dict]:
    """Flatten one executed :class:`~repro.observability.metrics.QueryProfile`
    into feedback observations: one dict per DAG node carrying stats, with
    the operator's position (counted across all region DAGs), its estimate
    under ``estimator``, its actuals, and the resource-ledger fields."""
    from .analyze import _region_input_plan, estimate_dag_rows

    observations: List[dict] = []
    position = 0
    for dag in profile.dags:
        estimates = estimate_dag_rows(dag, estimator)
        context = _region_input_plan(getattr(dag, "region_plan", None))
        for node in dag.topological_order():
            stats = getattr(node, "stats", None)
            position += 1
            if stats is None:
                continue
            estimate = estimates.get(id(node))
            observations.append(
                {
                    "position": position - 1,
                    "name": node.name(),
                    "describe": node.describe(),
                    "signature": _operator_signature(node, context),
                    "est_rows": None if estimate is None else float(estimate),
                    "actual_rows": float(stats.rows_out),
                    "bytes_materialized": stats.bytes_materialized,
                    "spill_bytes_written": stats.spill_bytes_written,
                    "peak_partition_bytes": stats.peak_partition_bytes,
                }
            )
    return observations


def root_observation(plan, est_rows: Optional[float], actual_rows: int) -> dict:
    """The profile-free fallback observation: the query's root cardinality
    (estimate at prepare time vs. rows actually returned). Recorded on
    every telemetry-enabled execution, so the feedback store fills even
    when per-operator metrics collection is off (the serving default)."""
    return {
        "position": 0,
        "name": "ROOT",
        "describe": "",
        "signature": plan_signature(plan),
        "est_rows": None if est_rows is None else float(est_rows),
        "actual_rows": float(actual_rows),
        "bytes_materialized": 0,
        "spill_bytes_written": 0,
        "peak_partition_bytes": 0,
    }


def _q_error(est: Optional[float], actual: float) -> Optional[float]:
    if est is None:
        return None
    est = max(1.0, float(est))
    actual = max(1.0, float(actual))
    return max(est / actual, actual / est)


class _OperatorFeedback:
    """Smoothed actuals for one ``(fingerprint, position)`` slot."""

    __slots__ = (
        "name", "describe", "signature", "est_rows", "actual_rows",
        "observations", "bytes_materialized", "spill_bytes_written",
        "peak_partition_bytes",
    )

    def __init__(self, observation: dict):
        self.name = str(observation.get("name", "?"))
        self.describe = str(observation.get("describe", ""))
        signature = observation.get("signature")
        self.signature = None if signature is None else str(signature)
        est = observation.get("est_rows")
        self.est_rows = None if est is None else float(est)
        self.actual_rows = float(observation.get("actual_rows", 0.0))
        self.observations = int(observation.get("observations", 1))
        self.bytes_materialized = int(observation.get("bytes_materialized", 0))
        self.spill_bytes_written = int(observation.get("spill_bytes_written", 0))
        self.peak_partition_bytes = int(observation.get("peak_partition_bytes", 0))

    def update(self, observation: dict) -> None:
        self.name = str(observation.get("name", self.name))
        self.describe = str(observation.get("describe", self.describe))
        signature = observation.get("signature")
        if signature is not None:
            self.signature = str(signature)
        est = observation.get("est_rows")
        if est is not None:
            self.est_rows = float(est)
        actual = float(observation.get("actual_rows", self.actual_rows))
        self.actual_rows = (
            (1.0 - ACTUAL_ALPHA) * self.actual_rows + ACTUAL_ALPHA * actual
        )
        self.observations += 1
        self.bytes_materialized = max(
            self.bytes_materialized, int(observation.get("bytes_materialized", 0))
        )
        self.spill_bytes_written = max(
            self.spill_bytes_written,
            int(observation.get("spill_bytes_written", 0)),
        )
        self.peak_partition_bytes = max(
            self.peak_partition_bytes,
            int(observation.get("peak_partition_bytes", 0)),
        )

    @property
    def q_error(self) -> Optional[float]:
        return _q_error(self.est_rows, self.actual_rows)

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "describe": self.describe,
            "signature": self.signature,
            "est_rows": self.est_rows,
            "actual_rows": self.actual_rows,
            "observations": self.observations,
            "bytes_materialized": self.bytes_materialized,
            "spill_bytes_written": self.spill_bytes_written,
            "peak_partition_bytes": self.peak_partition_bytes,
        }
        q = self.q_error
        if q is not None:
            out["q_error"] = q
        return out


class _FingerprintFeedback:
    __slots__ = ("fingerprint", "sql", "updated", "operators")

    def __init__(self, fingerprint: str, sql: str):
        self.fingerprint = fingerprint
        self.sql = sql
        self.updated = 0.0
        self.operators: Dict[int, _OperatorFeedback] = {}

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "sql": self.sql,
            "updated": self.updated,
            "operators": {
                str(position): feedback.to_dict()
                for position, feedback in sorted(self.operators.items())
            },
        }


def _validate_document(doc: object) -> _FingerprintFeedback:
    """Parse one on-disk feedback document, raising ``ValueError`` on any
    schema violation (the caller turns that into a tolerated skip)."""
    if not isinstance(doc, dict):
        raise ValueError("feedback document is not an object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported feedback schema_version {doc.get('schema_version')!r}"
        )
    fingerprint = doc.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise ValueError("feedback document missing fingerprint")
    operators = doc.get("operators")
    if not isinstance(operators, dict):
        raise ValueError("feedback document missing operators object")
    entry = _FingerprintFeedback(fingerprint, str(doc.get("sql", "")))
    entry.updated = float(doc.get("updated", 0.0))
    for key, payload in operators.items():
        position = int(key)
        if not isinstance(payload, dict):
            raise ValueError(f"operator {key} payload is not an object")
        if "actual_rows" not in payload:
            raise ValueError(f"operator {key} missing actual_rows")
        float(payload["actual_rows"])  # must be numeric
        entry.operators[position] = _OperatorFeedback(payload)
    return entry


class FeedbackStore:
    """Persistent per-``(plan fingerprint, operator position)`` actuals.

    Thread-safe; all mutation happens under one lock (queries complete
    concurrently under the service layer). Loading never raises: a corrupt
    or partial file is skipped with a ``feedback.load_error`` event.
    """

    def __init__(
        self,
        directory: str,
        max_files: int = 256,
        flush_interval: int = 8,
        telemetry=None,
    ):
        self.directory = directory
        self.max_files = max(1, int(max_files))
        self.flush_interval = max(1, int(flush_interval))
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self._entries: Dict[str, _FingerprintFeedback] = {}
        self._pending: Dict[str, int] = {}
        #: signature -> the most-observed feedback slot carrying it, so a
        #: calibration lookup is one dict probe instead of a store scan.
        self._signature_index: Dict[str, _OperatorFeedback] = {}
        os.makedirs(directory, exist_ok=True)
        self._load()

    # -- events ---------------------------------------------------------
    def _event(self, kind: str, **fields) -> None:
        if self._telemetry is not None:
            self._telemetry.recorder.record(kind, **fields)

    # -- persistence ----------------------------------------------------
    def _path(self, fingerprint: str) -> str:
        return os.path.join(
            self.directory, f"{_FILE_PREFIX}{fingerprint}{_FILE_SUFFIX}"
        )

    def _load(self) -> None:
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        for name in names:
            if not (name.startswith(_FILE_PREFIX) and name.endswith(_FILE_SUFFIX)):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = _validate_document(json.load(handle))
            except (OSError, ValueError, TypeError) as exc:
                self._event("feedback.load_error", file=name, error=str(exc))
                continue
            with self._lock:
                self._entries[entry.fingerprint] = entry
                for feedback in entry.operators.values():
                    self._index_locked(feedback)

    def _index_locked(self, feedback: _OperatorFeedback) -> None:
        signature = feedback.signature
        if signature is None:
            return
        existing = self._signature_index.get(signature)
        if existing is None or feedback.observations >= existing.observations:
            self._signature_index[signature] = feedback

    def _reindex_locked(self) -> None:
        self._signature_index.clear()
        for entry in self._entries.values():
            for feedback in entry.operators.values():
                self._index_locked(feedback)

    def _flush_locked(self, fingerprint: str) -> None:
        entry = self._entries[fingerprint]
        path = self._path(fingerprint)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry.to_dict(), handle, indent=1)
            os.replace(tmp, path)
        except OSError:
            # Advisory data: a failed flush must never fail the query.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _evict_locked(self) -> None:
        evicted = False
        while len(self._entries) > self.max_files:
            victim = min(self._entries.values(), key=lambda e: e.updated)
            del self._entries[victim.fingerprint]
            self._pending.pop(victim.fingerprint, None)
            try:
                os.unlink(self._path(victim.fingerprint))
            except OSError:
                pass
            self._event("feedback.evict", fingerprint=victim.fingerprint)
            evicted = True
        if evicted:
            self._reindex_locked()

    # -- recording ------------------------------------------------------
    def observe(self, fingerprint: str, sql: str, observations: List[dict]) -> None:
        """Fold one execution's observations into the store and flush the
        fingerprint's file per the throttle policy."""
        if not observations:
            return
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = _FingerprintFeedback(fingerprint, sql)
                self._entries[fingerprint] = entry
            entry.updated = time.time()
            for observation in observations:
                position = int(observation.get("position", 0))
                if position >= MAX_OPERATORS_PER_FINGERPRINT:
                    continue
                existing = entry.operators.get(position)
                if existing is None:
                    existing = _OperatorFeedback(observation)
                    entry.operators[position] = existing
                else:
                    existing.update(observation)
                self._index_locked(existing)
            count = self._pending.get(fingerprint, 0)
            self._pending[fingerprint] = count + 1
            self._evict_locked()
            if count % self.flush_interval == 0:
                self._flush_locked(fingerprint)

    def flush(self) -> None:
        """Write every in-memory entry to disk (shutdown / test hook)."""
        with self._lock:
            for fingerprint in list(self._entries):
                self._flush_locked(fingerprint)

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprints(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def get(self, fingerprint: str) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            return None if entry is None else entry.to_dict()

    def summary(self) -> dict:
        with self._lock:
            operators = sum(len(e.operators) for e in self._entries.values())
            worst: Optional[float] = None
            for entry in self._entries.values():
                for feedback in entry.operators.values():
                    q = feedback.q_error
                    if q is not None and (worst is None or q > worst):
                        worst = q
            return {
                "directory": self.directory,
                "fingerprints": len(self._entries),
                "operators": operators,
                "max_q_error": worst,
            }

    # -- calibration ----------------------------------------------------
    def calibration(self, min_observations: int = 1) -> "CalibrationOverrides":
        """A live estimator-override view over this store (later
        observations are visible without rebuilding)."""
        return CalibrationOverrides(self, min_observations=min_observations)

    def _lookup_signature(
        self, signature: str, min_observations: int
    ) -> Optional[float]:
        with self._lock:
            feedback = self._signature_index.get(signature)
            if feedback is None or feedback.observations < min_observations:
                return None
            return feedback.actual_rows


class CalibrationOverrides:
    """Duck-typed feedback source for
    :class:`~repro.logical.cardinality.CardinalityEstimator`: maps plan /
    group signatures to smoothed observed actuals. Lives on top of the
    store, so estimates sharpen as executions accumulate."""

    def __init__(self, store: FeedbackStore, min_observations: int = 1):
        self._store = store
        self.min_observations = max(1, int(min_observations))

    def rows_for(self, plan) -> Optional[float]:
        if plan is None:
            return None
        try:
            signature = plan_signature(plan)
        except Exception:  # noqa: BLE001 — foreign plan objects in tests
            return None
        return self._store._lookup_signature(signature, self.min_observations)

    def groups_for(self, plan, keys) -> Optional[float]:
        if plan is None:
            return None
        try:
            signature = group_signature(plan, keys)
        except Exception:  # noqa: BLE001
            return None
        return self._store._lookup_signature(signature, self.min_observations)
