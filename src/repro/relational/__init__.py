"""Relational substrate: the non-statistics part of the engine.

The paper's LOLEPOPs cover aggregation, window functions and sorting; plans
still need scans, filters, projections and joins underneath ("the biggest
exceptions are joins and set operations", §1). This package provides those
as vectorized physical operators, plus the grouped-reduction kernels every
aggregation operator (LOLEPOP or baseline) shares.
"""

from .kernels import (
    grouped_reduce,
    merge_reduce,
    percentile_from_sorted,
    MERGE_FUNC,
)
from .hash_join import HashJoinTable
from .executor import RelationalExecutor

__all__ = [
    "grouped_reduce",
    "merge_reduce",
    "percentile_from_sorted",
    "MERGE_FUNC",
    "HashJoinTable",
    "RelationalExecutor",
]
