"""Pipeline executor for the relational (non-statistics) plan fragment.

Scans, filters, projections and joins execute here, morsel-at-a-time, fused
into map pipelines the way a push-based engine inlines consecutive
per-tuple operators into one loop (paper §4.1). Statistics operators
(Aggregate / Window / Sort / Limit) are delegated to the ``stats_handler``
callback, which is how each engine plugs in its own aggregation machinery.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple


from ..errors import ExecutionError
from ..execution.context import ExecutionContext
from ..expr.eval import evaluate
from ..logical import (
    Aggregate,
    Filter,
    Join,
    JoinKind,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    UnionAll,
    Window,
)
from ..storage.batch import Batch
from ..storage.table import Catalog
from .hash_join import HashJoinTable

StatsHandler = Callable[[LogicalPlan], List[Batch]]


class RelationalExecutor:
    """Executes the relational fragment of a plan into a list of batches."""

    def __init__(
        self,
        catalog: Catalog,
        context: ExecutionContext,
        stats_handler: Optional[StatsHandler] = None,
    ):
        self.catalog = catalog
        self.context = context
        self.stats_handler = stats_handler

    # ------------------------------------------------------------------
    def execute(self, plan: LogicalPlan) -> List[Batch]:
        """Execute ``plan`` fully, returning its output as morsel batches."""
        if isinstance(plan, (Aggregate, Window, Sort, Limit)):
            if self.stats_handler is None:
                raise ExecutionError(
                    f"no statistics handler for {plan.label()}"
                )
            return self.stats_handler(plan)
        if isinstance(plan, UnionAll):
            batches: List[Batch] = []
            for child in plan.children:
                for batch in self.execute(child):
                    if len(batch):
                        batches.append(Batch(plan.schema, batch.columns))
            return batches or [Batch.empty(plan.schema)]
        if isinstance(plan, Join):
            return self._execute_join(plan)
        # Fuse the chain of Scan/Filter/Project above any pipeline breaker.
        source, mapper, label = self._compile_map_chain(plan)
        inputs = self._source_batches(source)
        if mapper is None:
            return inputs
        outputs = self.context.parallel_for(label, inputs, mapper)
        return [b for b in outputs if len(b)] or [Batch.empty(plan.schema)]

    # ------------------------------------------------------------------
    def _source_batches(self, plan: LogicalPlan) -> List[Batch]:
        if isinstance(plan, Scan):
            table = self.catalog.get(plan.table_name)
            batches = table.scan(self.context.config.morsel_size)
            # Scanning is work too; charge a cheap pass over the morsels.
            # ("tablescan" distinguishes base-table scans from the SCAN
            # LOLEPOP's buffer scans in traces.)
            self.context.parallel_for("tablescan", batches, lambda b: None)
            return batches
        return self.execute(plan)

    def _compile_map_chain(
        self, plan: LogicalPlan
    ) -> Tuple[LogicalPlan, Optional[Callable[[Batch], Batch]], str]:
        """Collect consecutive Filter/Project nodes into one per-morsel
        function (pipeline fusion)."""
        stages: List[LogicalPlan] = []
        node = plan
        while isinstance(node, (Filter, Project)):
            stages.append(node)
            node = node.children[0]
        if not stages:
            return node, None, "scan"
        stages.reverse()

        def mapper(batch: Batch) -> Batch:
            for stage in stages:
                if isinstance(stage, Filter):
                    mask_col = evaluate(stage.predicate, batch)
                    mask = mask_col.values.astype(bool) & mask_col.valid_mask()
                    batch = batch.filter(mask)
                else:
                    columns = [
                        evaluate(expr, batch) for _, expr in stage.items
                    ]
                    batch = Batch(stage.schema, columns)
            return batch

        label = "project" if isinstance(stages[-1], Project) else "filter"
        return node, mapper, label

    # ------------------------------------------------------------------
    def _execute_join(self, plan: Join) -> List[Batch]:
        build_batches = self.execute(plan.right)
        build = (
            Batch.concat(build_batches)
            if build_batches
            else Batch.empty(plan.right.schema)
        )
        tables = self.context.parallel_for(
            "join-build", [build], lambda b: HashJoinTable(b, plan.right_keys)
        )
        table = tables[0]
        probe_batches = self.execute(plan.left)
        self.context.next_phase()

        if plan.kind in (JoinKind.SEMI, JoinKind.ANTI):
            negate = plan.kind is JoinKind.ANTI

            def probe(batch: Batch) -> Batch:
                mask = table.semi_mask(batch, plan.left_keys)
                return batch.filter(~mask if negate else mask)

        else:
            left_outer = plan.kind is JoinKind.LEFT

            def probe(batch: Batch) -> Batch:
                joined = table.probe(batch, plan.left_keys, left_outer)
                return Batch(plan.schema, joined.columns)

        outputs = self.context.parallel_for("join-probe", probe_batches, probe)
        return [b for b in outputs if len(b)] or [Batch.empty(plan.schema)]
