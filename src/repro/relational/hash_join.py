"""Vectorized hash join.

Build side: dense-code dictionary over the build keys plus, per code, the
list of build row indices (CSR layout: ``offsets`` + ``row_ids``). Probe
side: map probe keys to codes via sorted-unique binary search, then expand
matches. Supports INNER, LEFT, SEMI and ANTI joins.

NULL join keys never match (SQL equality semantics).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..storage.batch import Batch
from ..storage.column import Column
from ..storage.keys import _normalize_values


def _composite(columns: Sequence[Column]) -> Tuple[np.ndarray, np.ndarray]:
    """(record array usable with np.unique/searchsorted, non-null mask).

    Uses the *stable* value encoding: build-side and probe-side batches must
    agree on the representation of equal keys."""
    parts = [_normalize_values(col, stable=True) for col in columns]
    valid = np.ones(len(columns[0]), dtype=bool)
    for col in columns:
        if col.valid is not None:
            valid &= col.valid
    if len(parts) == 1:
        return parts[0], valid
    stacked = np.column_stack(parts)
    record = np.ascontiguousarray(stacked).view(
        np.dtype((np.void, stacked.dtype.itemsize * stacked.shape[1]))
    ).ravel()
    return record, valid


class HashJoinTable:
    """Materialized build side of a hash join."""

    def __init__(self, build: Batch, key_names: Sequence[str]):
        self.build = build
        self.key_names = list(key_names)
        keys, valid = _composite([build.column(k) for k in key_names])
        rows = np.flatnonzero(valid)
        self._uniques, codes = np.unique(keys[rows], return_inverse=True)
        order = np.argsort(codes, kind="stable")
        self._row_ids = rows[order]
        counts = np.bincount(codes, minlength=len(self._uniques))
        self._offsets = np.concatenate(([0], np.cumsum(counts)))

    @property
    def num_keys(self) -> int:
        return len(self._uniques)

    # ------------------------------------------------------------------
    def _probe_codes(self, probe: Batch, key_names: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """(code per probe row, matched mask). Unmatched rows get code -1."""
        keys, valid = _composite([probe.column(k) for k in key_names])
        if len(self._uniques) == 0:
            return np.full(len(probe), -1, dtype=np.int64), np.zeros(len(probe), bool)
        positions = np.searchsorted(self._uniques, keys)
        positions = np.clip(positions, 0, len(self._uniques) - 1)
        matched = (self._uniques[positions] == keys) & valid
        codes = np.where(matched, positions, -1)
        return codes.astype(np.int64), matched

    def semi_mask(self, probe: Batch, key_names: Sequence[str]) -> np.ndarray:
        """Probe rows that have at least one build match."""
        _, matched = self._probe_codes(probe, key_names)
        return matched

    def probe(
        self, probe: Batch, key_names: Sequence[str], left_outer: bool = False
    ) -> Batch:
        """INNER (or LEFT when ``left_outer``) join of ``probe`` against the
        build side; output schema = probe schema ++ build schema (renamed on
        collision)."""
        codes, matched = self._probe_codes(probe, key_names)
        match_rows = np.flatnonzero(matched)
        match_codes = codes[match_rows]
        starts = self._offsets[match_codes]
        ends = self._offsets[match_codes + 1]
        counts = ends - starts
        probe_idx = np.repeat(match_rows, counts)
        # Expand build row ids: for each probe match, the slice of row_ids.
        build_idx = _expand_slices(self._row_ids, starts, counts)
        out_schema = probe.schema.concat(self.build.schema)
        if left_outer:
            missing = np.flatnonzero(~matched)
            probe_idx = np.concatenate([probe_idx, missing])
            order = np.argsort(probe_idx, kind="stable")
            columns: List[Column] = []
            n_match = len(build_idx)
            for col in probe.columns:
                columns.append(col.take(probe_idx[order]))
            for col in self.build.columns:
                values = col.take(build_idx)
                pad = Column.nulls(col.dtype, len(missing))
                merged = Column.concat([values, pad]) if len(missing) else values
                columns.append(merged.take(order))
            return Batch(out_schema, columns)
        columns = [col.take(probe_idx) for col in probe.columns]
        columns.extend(col.take(build_idx) for col in self.build.columns)
        return Batch(out_schema, columns)


def _expand_slices(
    row_ids: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``row_ids[starts[i]:starts[i]+counts[i]]`` for all i."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Offsets within the output for each slice.
    out_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    indices = np.repeat(starts - out_starts, counts) + np.arange(total)
    return row_ids[indices.astype(np.int64)]
