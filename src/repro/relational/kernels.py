"""Vectorized grouped-aggregation kernels.

``grouped_reduce`` evaluates one associative aggregate over dense group
codes; ``merge_reduce`` names the function that merges *partial* results of
each aggregate (COUNT partials merge by SUM, etc.) — the algebra behind
two-phase hash aggregation. ``percentile_from_sorted`` implements the
ordered-set aggregates on a sorted value slice.

NULL semantics: SUM/MIN/MAX ignore NULLs and return NULL for all-NULL
groups; COUNT counts non-NULL rows; ANY returns the first value (the paper's
pseudo aggregate — any group element is acceptable, we pick the first
non-NULL one for determinism, NULL if none).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..storage.column import Column
from ..types import DataType

#: How partial results of each aggregate merge in the second phase.
MERGE_FUNC = {
    "sum": "sum",
    "count": "sum",
    "count_star": "sum",
    "min": "min",
    "max": "max",
    "any": "any",
    "bool_and": "bool_and",
    "bool_or": "bool_or",
}

_ASSOCIATIVE = set(MERGE_FUNC)


def is_associative(func: str) -> bool:
    return func in _ASSOCIATIVE


def grouped_reduce(
    func: str,
    values: Optional[Column],
    codes: np.ndarray,
    num_groups: int,
) -> Column:
    """Evaluate one associative aggregate per dense group code.

    ``values`` is ``None`` only for ``count_star``. Returns one row per
    group, indexed by code.
    """
    if func == "count_star":
        counts = np.bincount(codes, minlength=num_groups)
        return Column(DataType.INT64, counts.astype(np.int64))
    if values is None:
        raise ExecutionError(f"{func} requires an argument column")
    valid = values.valid_mask()
    if func == "count":
        counts = np.bincount(codes[valid], minlength=num_groups)
        return Column(DataType.INT64, counts.astype(np.int64))
    if func == "sum":
        return _grouped_sum(values, codes, num_groups, valid)
    if func in ("min", "max"):
        return _grouped_minmax(func, values, codes, num_groups, valid)
    if func == "any":
        return _grouped_any(values, codes, num_groups, valid)
    if func in ("bool_and", "bool_or"):
        data = values.values.astype(bool)
        target = np.bincount(codes[valid], minlength=num_groups)
        hits = np.bincount(
            codes[valid & (data if func == "bool_or" else ~data)],
            minlength=num_groups,
        )
        if func == "bool_or":
            result = hits > 0
        else:
            result = hits == 0
        group_valid = target > 0
        return Column(DataType.BOOL, result, group_valid)
    raise ExecutionError(f"not an associative aggregate: {func}")


def _grouped_sum(
    values: Column, codes: np.ndarray, num_groups: int, valid: np.ndarray
) -> Column:
    counts = np.bincount(codes[valid], minlength=num_groups)
    group_valid = counts > 0
    if values.dtype is DataType.INT64:
        # np.add.at is exact for int64 (bincount weights would round through
        # float64).
        out = np.zeros(num_groups, dtype=np.int64)
        np.add.at(out, codes[valid], values.values[valid])
        return Column(DataType.INT64, out, group_valid)
    data = values.values.astype(np.float64)
    out = np.bincount(codes[valid], weights=data[valid], minlength=num_groups)
    return Column(DataType.FLOAT64, out, group_valid)


def _grouped_minmax(
    func: str, values: Column, codes: np.ndarray, num_groups: int, valid: np.ndarray
) -> Column:
    counts = np.bincount(codes[valid], minlength=num_groups)
    group_valid = counts > 0
    if values.dtype is DataType.STRING:
        out = np.full(num_groups, "", dtype=object)
        order = np.argsort(codes[valid], kind="stable")
        data = values.values[valid][order]
        sorted_codes = codes[valid][order]
        bounds = np.searchsorted(sorted_codes, np.arange(num_groups + 1))
        reducer = min if func == "min" else max
        for group in range(num_groups):
            lo, hi = bounds[group], bounds[group + 1]
            if lo < hi:
                out[group] = reducer(data[lo:hi])
        return Column(DataType.STRING, out, group_valid)
    fill = np.inf if func == "min" else -np.inf
    data = values.values.astype(np.float64)
    out = np.full(num_groups, fill, dtype=np.float64)
    ufunc = np.minimum if func == "min" else np.maximum
    ufunc.at(out, codes[valid], data[valid])
    if values.dtype in (DataType.INT64, DataType.DATE, DataType.BOOL):
        result = np.zeros(num_groups, dtype=values.dtype.numpy_dtype)
        result[group_valid] = out[group_valid].astype(values.dtype.numpy_dtype)
        return Column(values.dtype, result, group_valid)
    result = np.where(group_valid, out, 0.0)
    return Column(DataType.FLOAT64, result, group_valid)


def _grouped_any(
    values: Column, codes: np.ndarray, num_groups: int, valid: np.ndarray
) -> Column:
    # First non-NULL value per group: write back-to-front so the first wins.
    if values.dtype is DataType.STRING:
        out = np.full(num_groups, "", dtype=object)
    else:
        out = np.zeros(num_groups, dtype=values.dtype.numpy_dtype)
    group_valid = np.zeros(num_groups, dtype=bool)
    idx = np.flatnonzero(valid)[::-1]
    out[codes[idx]] = values.values[idx]
    group_valid[codes[idx]] = True
    return Column(values.dtype, out, group_valid)


def merge_reduce(
    func: str,
    partials: Column,
    codes: np.ndarray,
    num_groups: int,
) -> Column:
    """Merge partial aggregate results (phase 2 of two-phase aggregation)."""
    return grouped_reduce(MERGE_FUNC[func], partials, codes, num_groups)


def percentile_from_sorted(
    func: str,
    sorted_values: np.ndarray,
    fraction: float,
) -> Tuple[float, bool]:
    """Ordered-set aggregate over one group's sorted (NULL-free) values.

    Returns ``(value, is_valid)``; empty input yields NULL.

    - ``percentile_disc(f)``: the first value whose cumulative fraction is
      >= f (SQL standard).
    - ``percentile_cont(f)``: linear interpolation at position f·(n-1).
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0, False
    if func == "percentile_disc":
        index = int(np.ceil(fraction * n)) - 1
        index = min(max(index, 0), n - 1)
        return sorted_values[index], True
    if func == "percentile_cont":
        position = fraction * (n - 1)
        lower = int(np.floor(position))
        upper = int(np.ceil(position))
        if lower == upper:
            return float(sorted_values[lower]), True
        weight = position - lower
        return (
            float(sorted_values[lower]) * (1.0 - weight)
            + float(sorted_values[upper]) * weight,
            True,
        )
    raise ExecutionError(f"not an ordered-set aggregate: {func}")
