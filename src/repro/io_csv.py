"""CSV import with schema inference.

``read_csv`` parses a delimited file into ``{column: list-of-values}`` plus
an inferred :class:`~repro.types.Schema`. Inference tries, per column:
INT64 → FLOAT64 → DATE (ISO) → BOOL → STRING; empty cells become NULL.
"""

from __future__ import annotations

import csv
import datetime
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import CatalogError
from .types import DataType, Field, Schema

_BOOL_TOKENS = {
    "true": True, "false": False, "t": True, "f": False,
}


def _try_int(text: str) -> Optional[int]:
    try:
        return int(text)
    except ValueError:
        return None


def _try_float(text: str) -> Optional[float]:
    try:
        return float(text)
    except ValueError:
        return None


def _try_date(text: str) -> Optional[datetime.date]:
    try:
        return datetime.date.fromisoformat(text)
    except ValueError:
        return None


def infer_column_type(values: Sequence[Optional[str]]) -> DataType:
    """The narrowest type accepting every non-empty cell."""
    candidates = [DataType.INT64, DataType.FLOAT64, DataType.DATE, DataType.BOOL]
    for text in values:
        if text is None or text == "":
            continue
        if DataType.INT64 in candidates and _try_int(text) is None:
            candidates = [c for c in candidates if c is not DataType.INT64]
        if DataType.FLOAT64 in candidates and _try_float(text) is None:
            candidates = [c for c in candidates if c is not DataType.FLOAT64]
        if DataType.DATE in candidates and _try_date(text) is None:
            candidates = [c for c in candidates if c is not DataType.DATE]
        if DataType.BOOL in candidates and text.lower() not in _BOOL_TOKENS:
            candidates = [c for c in candidates if c is not DataType.BOOL]
        if not candidates:
            return DataType.STRING
    for preferred in (DataType.INT64, DataType.FLOAT64, DataType.DATE, DataType.BOOL):
        if preferred in candidates:
            return preferred
    return DataType.STRING


def _convert(text: Optional[str], dtype: DataType) -> Any:
    if text is None or text == "":
        return None
    if dtype is DataType.INT64:
        return int(text)
    if dtype is DataType.FLOAT64:
        return float(text)
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat(text)
    if dtype is DataType.BOOL:
        return _BOOL_TOKENS[text.lower()]
    return text


def read_csv(
    path: str,
    schema: Optional[Schema] = None,
    delimiter: str = ",",
    header: bool = True,
) -> Tuple[Schema, Dict[str, List[Any]]]:
    """Parse ``path``; returns (schema, column data). Without a header the
    columns are named ``c0, c1, ...``."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows and schema is None:
        raise CatalogError(f"empty CSV without schema: {path}")
    if header:
        names = [name.strip() for name in rows[0]]
        rows = rows[1:]
    else:
        width = len(schema) if schema is not None else len(rows[0])
        names = [f"c{i}" for i in range(width)]
    columns: Dict[str, List[Optional[str]]] = {name: [] for name in names}
    for row in rows:
        if len(row) != len(names):
            raise CatalogError(
                f"CSV row width {len(row)} != header width {len(names)}"
            )
        for name, cell in zip(names, row):
            columns[name].append(cell)
    if schema is None:
        schema = Schema(
            Field(name, infer_column_type(columns[name])) for name in names
        )
    data = {
        field.name: [
            _convert(cell, field.dtype) for cell in columns[field.name]
        ]
        for field in schema
    }
    return schema, data
