"""Legacy setup shim: the offline environment lacks the `wheel` package, so
`pip install -e . --no-build-isolation` needs the setup.py develop path."""
from setuptools import setup

setup()
