"""Extensibility (paper §3.4): defining new statistics without touching
operator logic.

The paper's point: because complex aggregates are *composed* from low-level
plan operators through a planner API, adding a statistic is a few lines of
graph construction — the paper shows ``planMSSD``; this example builds that
plus a custom trimmed mean, and shows how interning shares the underlying
primitive aggregates across statistics.

Run:  python examples/extensibility.py
"""

import numpy as np

from repro import Database
from repro.compgraph import AggregatePlanner, functions as F
from repro.compgraph.graph import render_computation_graph
from repro.lolepop import LolepopEngine


def plan_range_ratio(planner: AggregatePlanner, x) -> "F.Node":
    """A custom statistic: (max - min) / iqr — defined here, by a *user*,
    purely through the planner API."""
    spread = planner.aggregate("max", x) - planner.aggregate("min", x)
    return spread / F.iqr(planner, x).nullif(0.0)


def main() -> None:
    db = Database(num_threads=2)
    db.create_table("m", {"g": "int64", "x": "float64", "t": "int64"})
    rng = np.random.default_rng(11)
    n = 3_000
    db.insert(
        "m",
        {
            "g": rng.integers(0, 5, n),
            "x": np.round(rng.lognormal(0.0, 0.6, n), 4),
            "t": rng.permutation(n),
        },
    )

    planner = AggregatePlanner(db.plan("SELECT * FROM m"), group_by=["g"])
    x = planner.value("x")
    plan = planner.finish(
        {
            "g": planner.key("g"),
            # Paper-provided Low-Level-Functions:
            "mssd": F.mssd(planner, x, planner.value("t")),
            "mad": F.mad(planner, x),
            "iqr": F.iqr(planner, x),
            "kurtosis": F.kurtosis(planner, x),
            "skewness": F.skewness(planner, x),
            # ... and the custom one defined above:
            "range_ratio": plan_range_ratio(planner, x),
        }
    )

    print(
        f"The six statistics share {len(planner.aggregates)} primitive "
        f"aggregates and {len(planner.windows)} window computations:\n"
    )
    print(render_computation_graph(plan))

    result = LolepopEngine(db.catalog, db.config).run(plan)
    print("\nResults:")
    print("   ", result.schema.names())
    for row in sorted(result.rows()):
        print("    g =", row[0], " ".join(f"{v:8.4f}" for v in row[1:]))

    # Equivalent SQL exists for the built-ins — the planner API and the SQL
    # frontend lower through the same computation graph:
    sql = db.sql(
        "SELECT g, mad(x) FROM m GROUP BY g", engine="lolepop"
    )
    api_mad = {g: round(v, 9) for g, *rest in result.rows() for v in [rest[1]]}
    sql_mad = {g: round(v, 9) for g, v in sql.rows()}
    assert api_mad == sql_mad
    print("\nSQL mad(x) and planner-API mad agree on every group.")


if __name__ == "__main__":
    main()
