"""Quickstart: create a table, run every flavor of SQL aggregate, inspect
the LOLEPOP plan.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, EngineConfig


def main() -> None:
    db = Database(num_threads=4)

    # ------------------------------------------------------------------
    # 1. A small sales table.
    # ------------------------------------------------------------------
    db.create_table(
        "sales",
        {
            "region": "string",
            "product": "string",
            "day": "date",
            "amount": "float64",
            "quantity": "int64",
        },
    )
    rng = np.random.default_rng(7)
    n = 5_000
    regions = np.array(["north", "south", "east", "west"], dtype=object)
    products = np.array(["anvil", "rocket", "magnet"], dtype=object)
    db.insert(
        "sales",
        {
            "region": regions[rng.integers(0, 4, n)],
            "product": products[rng.integers(0, 3, n)],
            "day": np.array("2025-01-01", dtype="datetime64[D]")
            + rng.integers(0, 365, n),
            "amount": np.round(rng.gamma(3.0, 40.0, n), 2),
            "quantity": rng.integers(1, 20, n),
        },
    )

    # ------------------------------------------------------------------
    # 2. Associative, distinct, and ordered-set aggregates in one query —
    #    the combination the paper's framework is built for.
    # ------------------------------------------------------------------
    result = db.sql(
        """
        SELECT region,
               sum(amount)                                        AS revenue,
               count(DISTINCT product)                            AS products,
               percentile_disc(0.5) WITHIN GROUP (ORDER BY amount) AS median_sale,
               mad(amount)                                        AS mad
        FROM sales
        GROUP BY region
        ORDER BY revenue DESC
        """
    )
    print("Per-region statistics:")
    print("   ", result.schema.names())
    for row in result.rows():
        print("   ", row)

    # ------------------------------------------------------------------
    # 3. Window functions share materialized buffers with aggregation.
    # ------------------------------------------------------------------
    running = db.sql(
        """
        SELECT region, day, amount,
               cumsum(amount) OVER (PARTITION BY region ORDER BY day, amount) AS running
        FROM sales
        ORDER BY running DESC
        LIMIT 5
        """
    )
    print("\nTop running totals:")
    for row in running.rows():
        print("   ", row)

    # ------------------------------------------------------------------
    # 4. Inspect the LOLEPOP DAG (compare with the paper's Figure 1).
    # ------------------------------------------------------------------
    print("\nLOLEPOP plan for a median + avg + distinct-sum query:")
    print(
        db.explain_lolepop(
            "SELECT median(amount), avg(quantity), sum(DISTINCT quantity) "
            "FROM sales GROUP BY region"
        )
    )

    # ------------------------------------------------------------------
    # 5. The same query on the monolithic (HyPer-style) engine gives the
    #    same answer — the architectural difference is performance.
    # ------------------------------------------------------------------
    sql = "SELECT region, median(amount) FROM sales GROUP BY region"
    fast = db.sql(sql, engine="lolepop", config=EngineConfig(num_threads=4))
    slow = db.sql(sql, engine="monolithic", config=EngineConfig(num_threads=4))
    assert sorted(fast.rows()) == sorted(slow.rows())
    print(
        f"\nlolepop {fast.simulated_time * 1000:.2f} ms vs "
        f"monolithic {slow.simulated_time * 1000:.2f} ms (simulated, 4 threads)"
    )


if __name__ == "__main__":
    main()
