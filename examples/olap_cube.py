"""OLAP-style reporting over TPC-H: grouping sets, rollups and percentiles.

Demonstrates the grouping-set machinery the paper evaluates in Table 3
(queries 8-12) on the TPC-H substrate: multi-granularity revenue rollups
computed by *reaggregation* in the LOLEPOP engine, and a percentile
breakdown sharing one sorted buffer across grouping sets.

Run:  python examples/olap_cube.py
"""

from repro import Database, EngineConfig
from repro.tpch import populate_database


def main() -> None:
    db = Database(num_threads=4)
    populate_database(db, scale_factor=0.01, tables=["lineitem", "orders"])

    # ------------------------------------------------------------------
    # 1. Revenue rollup over (shipmode, linestatus): one pass groups the
    #    finest granularity, coarser sets reaggregate its output.
    # ------------------------------------------------------------------
    rollup = db.sql(
        """
        SELECT l_shipmode, l_linestatus,
               sum(l_extendedprice * (1 - l_discount)) AS revenue,
               count(*) AS line_count
        FROM lineitem
        GROUP BY ROLLUP (l_shipmode, l_linestatus)
        """
    )
    print("Revenue rollup (NULL = subtotal level):")
    for row in sorted(rollup.rows(), key=lambda r: (r[0] is None, str(r[0]), r[1] is None, str(r[1]))):
        mode = row[0] or "(all modes)"
        status = row[1] or "(all)"
        print(f"    {mode:<10} {status:<7} revenue {row[2]:14.2f}   lines {row[3]}")

    print("\nLOLEPOP plan (note the reaggregating HASHAGG chain):")
    print(
        db.explain_lolepop(
            "SELECT l_shipmode, l_linestatus, sum(l_extendedprice) FROM lineitem "
            "GROUP BY ROLLUP (l_shipmode, l_linestatus)"
        )
    )

    # ------------------------------------------------------------------
    # 2. Percentiles at two granularities share one partitioned buffer
    #    (Table 3 query 10's plan): the buffer is re-sorted in place.
    # ------------------------------------------------------------------
    percentiles = db.sql(
        """
        SELECT l_shipmode, l_linenumber,
               percentile_disc(0.5) WITHIN GROUP (ORDER BY l_quantity) AS median_qty
        FROM lineitem
        GROUP BY GROUPING SETS ((l_shipmode, l_linenumber), (l_shipmode))
        """
    )
    coarse = [r for r in percentiles.rows() if r[1] is None]
    print("\nMedian quantity per ship mode (coarse grouping set):")
    for mode, _, median in sorted(coarse):
        print(f"    {mode:<10} {median}")

    # ------------------------------------------------------------------
    # 3. The architectural payoff: the monolithic engine recomputes the
    #    input per grouping set (UNION ALL), the LOLEPOP engine does not.
    # ------------------------------------------------------------------
    sql = (
        "SELECT l_shipmode, l_linenumber, sum(l_quantity) FROM lineitem "
        "GROUP BY GROUPING SETS ((l_shipmode, l_linenumber), (l_shipmode), "
        "(l_linenumber))"
    )
    config = EngineConfig(num_threads=4, morsel_size=8192)
    fast = db.sql(sql, engine="lolepop", config=config)
    slow = db.sql(sql, engine="monolithic", config=config)
    print(
        f"\ngrouping sets, 4 threads (simulated): lolepop "
        f"{fast.simulated_time * 1000:.1f} ms vs monolithic "
        f"{slow.simulated_time * 1000:.1f} ms"
    )
    assert sorted(map(str, fast.rows())) == sorted(map(str, slow.rows()))


if __name__ == "__main__":
    main()
