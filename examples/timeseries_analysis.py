"""Time-series analysis: the paper's introductory workload.

The paper opens with a query that computes, per group, the average, median
and distinct count of successive *differences* of a measurement — a window
function feeding associative, ordered-set, and distinct aggregates at once.
This example runs exactly that over a synthetic sensor table, plus the
MSSD dispersion statistic of §3.4, and renders the execution trace.

Run:  python examples/timeseries_analysis.py
"""

import numpy as np

from repro import Database, EngineConfig


def build_sensor_data(db: Database, sensors: int = 8, samples: int = 4_000) -> None:
    db.create_table(
        "readings",
        {"sensor": "int64", "tick": "int64", "value": "float64"},
    )
    rng = np.random.default_rng(42)
    sensor_ids = np.repeat(np.arange(sensors), samples)
    ticks = np.tile(np.arange(samples), sensors)
    # A drifting random walk per sensor with different noise levels.
    noise = rng.normal(0, 1 + (sensor_ids % 4), sensors * samples)
    drift = 0.01 * (sensor_ids + 1) * ticks
    values = np.round(drift + np.cumsum(noise) * 0.01, 4)
    db.insert("readings", {"sensor": sensor_ids, "tick": ticks, "value": values})


def main() -> None:
    db = Database(num_threads=4)
    build_sensor_data(db)

    # The paper's introductory query: WITH diffs AS (... lag ...) SELECT
    # avg, median, count(DISTINCT ...) — three aggregation flavors over one
    # windowed intermediate.
    intro = db.sql(
        """
        WITH diffs AS (
            SELECT sensor,
                   value - lag(value) OVER (PARTITION BY sensor ORDER BY tick) AS delta
            FROM readings
        )
        SELECT sensor,
               avg(delta)            AS mean_step,
               median(delta)         AS median_step,
               count(DISTINCT delta) AS distinct_steps
        FROM diffs
        GROUP BY sensor
        ORDER BY sensor
        """
    )
    print("Per-sensor step statistics (paper's introductory query):")
    print("   ", intro.schema.names())
    for row in intro.rows():
        print(
            f"    sensor {row[0]}: mean {row[1]:+.5f}  median {row[2]:+.5f}  "
            f"distinct {row[3]}"
        )

    # Dispersion without temporal drift: the MSSD Low-Level-Function.
    mssd = db.sql(
        """
        SELECT sensor,
               mssd(value) WITHIN GROUP (ORDER BY tick) AS mssd,
               stddev_samp(value)                       AS stddev
        FROM readings
        GROUP BY sensor
        ORDER BY sensor
        """
    )
    print("\nMSSD vs plain standard deviation (MSSD ignores the drift):")
    for sensor, m, s in mssd.rows():
        print(f"    sensor {sensor}: mssd {m:8.4f}   stddev {s:8.4f}")

    # Show where the time goes: the execution trace of the MSSD query.
    config = EngineConfig(num_threads=4, num_partitions=16, collect_trace=True)
    traced = db.sql(
        "SELECT sensor, mssd(value) WITHIN GROUP (ORDER BY tick) AS m "
        "FROM readings GROUP BY sensor",
        config=config,
    )
    print("\nExecution trace (4 simulated threads):")
    print(traced.trace.render(width=90))


if __name__ == "__main__":
    main()
