"""Render the paper's plan figures from live translations.

Prints, for each query of the paper's Figure 1 and Figure 3, the bound
computation graph (Figure 1, middle) and the translated LOLEPOP DAG
(Figure 1 right / Figure 3), so the reproduction can be eyeballed against
the paper side by side.

Run:  python examples/paper_plans.py
"""

from repro import Database
from repro.compgraph import render_computation_graph

QUERIES = {
    "Figure 1 — median, avg, distinct sum": (
        "SELECT median(a), avg(b), sum(DISTINCT c) FROM r GROUP BY d"
    ),
    "Figure 3 plan 0 — composed aggregates share SUM/COUNT": (
        "SELECT a, var_pop(b), count(b), sum(b) FROM r GROUP BY a"
    ),
    "Figure 3 plan 1 — grouping sets by reaggregation": (
        "SELECT a, b, sum(c) FROM r GROUP BY GROUPING SETS ((a), (b), (a, b))"
    ),
    "Figure 3 plan 2 — shared buffer, re-sorted per ordering": (
        "SELECT a, sum(b), sum(DISTINCT b), "
        "percentile_disc(0.5) WITHIN GROUP (ORDER BY c), "
        "percentile_disc(0.5) WITHIN GROUP (ORDER BY d) FROM r GROUP BY a"
    ),
    "Figure 3 plan 3 — ORDER BY reuses the window buffer": (
        "SELECT row_number() OVER (PARTITION BY a ORDER BY b) AS rn, c "
        "FROM r ORDER BY c LIMIT 100"
    ),
    "Figure 3 plan 4 — MAD (nested ordered-set aggregate)": (
        "SELECT a, mad(b) FROM r GROUP BY a"
    ),
    "Figure 3 plan 5 — MSSD (window ordering compatible, sort elided)": (
        "SELECT b, sum(pow(lead(a) OVER (PARTITION BY b ORDER BY a) - a, 2)) "
        "/ nullif(count(*) - 1, 0) FROM r GROUP BY b"
    ),
}


def main() -> None:
    db = Database()
    db.create_table(
        "r",
        {"a": "int64", "b": "float64", "c": "float64", "d": "float64"},
    )
    for title, sql in QUERIES.items():
        print("=" * 78)
        print(title)
        print("-" * 78)
        print(sql.strip())
        graph = render_computation_graph(db.plan(sql))
        if "no aggregation region" not in graph:
            print("\ncomputation graph (Figure 1, middle):")
            print(graph)
        print("\nLOLEPOP DAG:")
        print(db.explain_lolepop(sql))
        print()


if __name__ == "__main__":
    main()
