"""Tests for the always-on service telemetry layer: flight recorder,
slow-query log, plan-fingerprinted workload profiler, Q-error drift
detection, health sampling, and the zero-allocation disabled path."""

from __future__ import annotations

import importlib.util
import json
import os
import threading

import numpy as np
import pytest

from repro import (
    AdmissionError,
    Database,
    QueryCancelled,
    QueryService,
    ServiceConfig,
)
from repro.errors import PlanVerificationError, ReproError
from repro.lolepop.base import Dag
from repro.lolepop.verify import verify_dag
from repro.observability.chrome import chrome_trace_events
from repro.observability.events import EVENT_KINDS, FlightRecorder
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.telemetry import (
    GLOBAL_TELEMETRY,
    QueryRecord,
    SlowQueryLog,
    Telemetry,
    TelemetryConfig,
    render_report,
)
from repro.observability.workload import (
    BASELINE_WINDOW,
    WorkloadStats,
    plan_fingerprint,
)


def fresh_telemetry(**overrides) -> Telemetry:
    """A private, enabled instance with every-query slow logging unless a
    test overrides the threshold."""
    overrides.setdefault("enabled", True)
    overrides.setdefault("slow_query_threshold_s", 0.0)
    return Telemetry(TelemetryConfig(**overrides))


def make_db(telemetry, rows=2000, seed=3, plan_cache_size=256):
    db = Database(
        num_threads=2, plan_cache_size=plan_cache_size, telemetry=telemetry
    )
    db.create_table("t", {"g": "int64", "x": "float64", "o": "int64"})
    rng = np.random.default_rng(seed)
    db.insert(
        "t",
        {
            "g": rng.integers(0, 5, rows),
            "x": rng.random(rows).round(4),
            "o": rng.permutation(rows),
        },
    )
    return db


def service_for(db, **cfg):
    return QueryService(db, ServiceConfig(**cfg), registry=MetricsRegistry())


# ---------------------------------------------------------------------------
# Flight recorder (unit)
# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_bounds_and_dropped_counter(self):
        recorder = FlightRecorder(capacity=8)
        for i in range(20):
            recorder.record("query.finish", i=i)
        assert len(recorder) == 8
        assert recorder.recorded == 20
        assert recorder.dropped == 12
        events = recorder.snapshot()
        # Oldest-first, the 12 oldest rotated out.
        assert [e["i"] for e in events] == list(range(12, 20))
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)

    def test_snapshot_filters_by_kind_and_last(self):
        recorder = FlightRecorder(capacity=64)
        for i in range(6):
            recorder.record("query.finish" if i % 2 else "cache.hit", i=i)
        finishes = recorder.snapshot(kind="query.finish")
        assert [e["i"] for e in finishes] == [1, 3, 5]
        assert [e["i"] for e in recorder.snapshot(last=2)] == [4, 5]

    def test_stats_and_reset(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("spill", bytes_written=10)
        recorder.record("spill", bytes_written=20)
        recorder.record("query.error", error="boom")
        stats = recorder.stats()
        assert stats["by_kind"] == {"query.error": 1, "spill": 2}
        assert stats["recorded"] == 3 and stats["dropped"] == 0
        recorder.reset()
        assert recorder.recorded == 0 and len(recorder) == 0
        assert recorder.stats()["by_kind"] == {}

    def test_dump_json(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.record("query.finish", query_id="q1", rows=3)
        path = str(tmp_path / "flight.json")
        assert recorder.dump_json(path) == 1
        doc = json.load(open(path))
        assert doc["stats"]["recorded"] == 1
        assert doc["events"][0]["kind"] == "query.finish"
        assert doc["events"][0]["query_id"] == "q1"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_thread_safety_no_lost_events(self):
        recorder = FlightRecorder(capacity=10_000)

        def hammer():
            for _ in range(500):
                recorder.record("cache.hit")

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert recorder.recorded == 2000
        assert recorder.stats()["by_kind"]["cache.hit"] == 2000


# ---------------------------------------------------------------------------
# Slow-query log (unit)
# ---------------------------------------------------------------------------
def _record(query_id="q1", total_s=0.0, **kw):
    kw.setdefault("sql", "select 1")
    kw.setdefault("fingerprint", "f" * 16)
    return QueryRecord(query_id, kw.pop("sql"), kw.pop("fingerprint"),
                       total_s=total_s, **kw)


class TestSlowQueryLog:
    def test_threshold(self):
        log = SlowQueryLog(capacity=8, threshold_s=0.5)
        assert log.observe(_record(total_s=0.1)) is False
        assert log.observe(_record(total_s=0.9)) is True
        assert log.observed == 1 and len(log) == 1
        assert log.snapshot()[0]["total_s"] == 0.9

    def test_capacity_rotation_keeps_observed_count(self):
        log = SlowQueryLog(capacity=2, threshold_s=0.0)
        for i in range(5):
            log.observe(_record(query_id=f"q{i}", total_s=float(i)))
        assert log.observed == 5 and len(log) == 2
        assert [r["query_id"] for r in log.snapshot()] == ["q3", "q4"]

    def test_reset(self):
        log = SlowQueryLog(capacity=2, threshold_s=0.0)
        log.observe(_record())
        log.reset()
        assert log.observed == 0 and log.snapshot() == []


# ---------------------------------------------------------------------------
# Workload profiler + drift (unit)
# ---------------------------------------------------------------------------
class TestWorkloadStats:
    def test_capacity_bound_evicts_least_recently_updated(self):
        stats = WorkloadStats(capacity=2)
        stats.observe("a", "sql a", "lolepop", 0.1)
        stats.observe("b", "sql b", "lolepop", 0.1)
        stats.observe("a", "sql a", "lolepop", 0.1)  # refresh a
        stats.observe("c", "sql c", "lolepop", 0.1)  # evicts b, not a
        assert len(stats) == 2 and stats.evicted == 1
        assert stats.get("a") is not None and stats.get("c") is not None
        assert stats.get("b") is None

    def test_drift_detection_fires_after_baseline(self):
        stats = WorkloadStats()
        for _ in range(BASELINE_WINDOW):
            stats.observe("fp", "sql", "lolepop", 0.01, q_error=1.0)
        assert stats.drifting_templates() == []
        # The cardinality model goes stale: recent Q-errors degrade.
        for _ in range(10):
            stats.observe("fp", "sql", "lolepop", 0.01, q_error=8.0)
        drifting = stats.drifting_templates(threshold=2.0)
        assert [fp for fp, _ in drifting] == ["fp"]
        entry = drifting[0][1]
        assert entry.drift_ratio() > 2.0
        assert entry.q_baseline.mean == pytest.approx(1.0)
        assert entry.q_max == 8.0

    def test_stable_template_never_drifts(self):
        stats = WorkloadStats()
        for _ in range(BASELINE_WINDOW + 20):
            stats.observe("fp", "sql", "lolepop", 0.01, q_error=3.0)
        assert stats.drifting_templates(threshold=2.0) == []

    def test_min_count_guards_young_templates(self):
        stats = WorkloadStats()
        for _ in range(3):
            stats.observe("fp", "sql", "lolepop", 0.01, q_error=50.0)
        assert stats.drifting_templates(threshold=1.1) == []

    def test_snapshot_shape(self):
        stats = WorkloadStats(capacity=4)
        stats.observe("fp", "sql", "lolepop", 0.01, q_error=2.0,
                      plan_cache_hit=True, rows=7)
        doc = stats.snapshot()
        assert doc["tracked"] == 1 and doc["capacity"] == 4
        entry = doc["templates"][0]
        assert entry["count"] == 1 and entry["plan_cache_hits"] == 1
        assert entry["rows_out"] == 7
        assert "quantiles" in entry["latency"]


class TestPlanFingerprint:
    def test_literals_collide_shapes_differ(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        db.sql("SELECT g, sum(x) FROM t WHERE o < 100 GROUP BY g")
        db.sql("SELECT g, sum(x) FROM t WHERE o < 999 GROUP BY g")
        db.sql("SELECT g, median(x) FROM t GROUP BY g")
        entries = telemetry.workload.templates()
        assert len(entries) == 2
        # The literal-only pair aggregated under one template.
        assert sorted(e.count for e in entries) == [1, 2]

    def test_fallback_on_sql_text(self):
        a = plan_fingerprint([], "select 1")
        b = plan_fingerprint([], "select 2")
        assert a != b
        assert a == plan_fingerprint([], "select 1")
        # Engine scoping: the same text on another engine is another key.
        assert a != plan_fingerprint([], "select 1", engine="naive")

    def test_stable_across_executions(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        db.sql("SELECT count(*) FROM t")
        db.sql("SELECT count(*) FROM t")
        entries = telemetry.workload.templates()
        assert len(entries) == 1 and entries[0].count == 2


# ---------------------------------------------------------------------------
# Database-level audit records
# ---------------------------------------------------------------------------
class TestDatabaseRecords:
    def test_sql_emits_one_record_with_breakdown(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        db.sql("SELECT g, sum(x) FROM t GROUP BY g")
        assert telemetry.queries_recorded == 1
        record = telemetry.slowlog.snapshot()[-1]
        assert record["status"] == "ok"
        assert record["engine"] == "lolepop"
        assert record["rows"] == 5
        assert record["plan_cache_hit"] is False
        assert record["parse_bind_s"] > 0
        assert record["execute_s"] > 0
        assert record["total_s"] >= record["parse_bind_s"]
        assert record["query_id"].startswith("d")
        finishes = telemetry.recorder.snapshot(kind="query.finish")
        assert len(finishes) == 1
        assert finishes[0]["fingerprint"] == record["fingerprint"]

    def test_plan_cache_hit_flag(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        db.sql("SELECT count(*) FROM t")
        db.sql("SELECT count(*) FROM t")
        first, second = telemetry.slowlog.snapshot()
        assert first["plan_cache_hit"] is False
        assert second["plan_cache_hit"] is True

    def test_max_q_error_always_on(self):
        # No profile collected, yet the record carries a root-level
        # Q-error from the cached per-plan estimate.
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        db.sql("SELECT g, sum(x) FROM t GROUP BY g")
        record = telemetry.slowlog.snapshot()[-1]
        assert record["max_q_error"] is not None
        assert record["max_q_error"] >= 1.0
        entry = telemetry.workload.templates()[0]
        assert entry.q_stats.count == 1

    def test_explain_not_recorded(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        db.sql("EXPLAIN SELECT count(*) FROM t")
        db.sql("EXPLAIN LOLEPOP SELECT count(*) FROM t")
        assert telemetry.queries_recorded == 0

    def test_parse_error_recorded(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with pytest.raises(ReproError):
            db.sql("SELECT FROM nothing WHERE")
        assert telemetry.queries_recorded == 1
        record = telemetry.slowlog.snapshot()[-1]
        assert record["status"] == "error"
        assert record["error"]
        assert telemetry.recorder.snapshot(kind="query.error")

    def test_plan_cache_evict_event(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry, plan_cache_size=2)
        db.sql("SELECT count(*) FROM t")
        db.sql("SELECT sum(x) FROM t")
        db.sql("SELECT g, count(*) FROM t GROUP BY g")
        evictions = telemetry.recorder.snapshot(kind="cache.evict")
        assert evictions and evictions[0]["cache"] == "plan"

    def test_sql_truncation(self):
        telemetry = fresh_telemetry(max_sql_chars=30)
        db = make_db(telemetry)
        db.sql(
            "SELECT g, sum(x), min(x), max(x), count(*) FROM t GROUP BY g"
        )
        record = telemetry.slowlog.snapshot()[-1]
        assert len(record["sql"]) == 30 and record["sql"].endswith("...")


# ---------------------------------------------------------------------------
# Service-level events, attribution, health
# ---------------------------------------------------------------------------
class TestServiceTelemetry:
    def test_query_and_session_attribution(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with service_for(db, health_interval_s=0) as service:
            session = service.session()
            session.execute("SELECT g, sum(x) FROM t GROUP BY g", timeout=60)
        record = telemetry.slowlog.snapshot()[-1]
        assert record["session_id"] not in ("-", None)
        starts = telemetry.recorder.snapshot(kind="query.start")
        assert len(starts) == 1
        assert starts[0]["query_id"] == record["query_id"]
        assert starts[0]["session_id"] == record["session_id"]
        assert record["queue_wait_s"] >= 0.0

    def test_result_cache_hit_recorded(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with service_for(db, health_interval_s=0) as service:
            session = service.session()
            sql = "SELECT g, sum(x) FROM t GROUP BY g"
            session.execute(sql, timeout=60)
            session.execute(sql, timeout=60)
        assert telemetry.queries_recorded == 2
        first, second = telemetry.slowlog.snapshot()
        assert first["result_cache_hit"] is False
        assert second["result_cache_hit"] is True
        # Both executions aggregate under one fingerprint.
        assert first["fingerprint"] == second["fingerprint"]
        hits = telemetry.recorder.snapshot(kind="cache.hit")
        assert any(e["cache"] == "result" for e in hits)

    def test_admission_reject_event(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with service_for(
            db, health_interval_s=0, memory_budget_bytes=1
        ) as service:
            with pytest.raises(AdmissionError):
                service.submit("SELECT g, median(x) FROM t GROUP BY g")
        rejects = telemetry.recorder.snapshot(kind="admission.reject")
        assert len(rejects) == 1 and rejects[0]["reason"]

    def test_cancel_recorded(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry, rows=3000)
        slow_sql = (
            "SELECT g, x, sum(x) OVER (PARTITION BY g ORDER BY o) AS c, "
            "median(x) OVER (PARTITION BY g) AS m FROM t"
        )
        with service_for(db, health_interval_s=0) as service:
            ticket = service.submit(slow_sql, timeout=1e-6)
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=30)
        record = telemetry.slowlog.snapshot()[-1]
        assert record["status"] == "cancelled"
        assert telemetry.recorder.snapshot(kind="query.cancel")

    def test_cancel_while_queued_recorded(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry, rows=30000)
        slow_sql = (
            "SELECT g, x, sum(x) OVER (PARTITION BY g ORDER BY o) AS c, "
            "median(x) OVER (PARTITION BY g) AS m FROM t"
        )
        with service_for(
            db, max_concurrent=1, health_interval_s=0
        ) as service:
            running = service.submit(slow_sql, use_result_cache=False)
            queued = service.submit(
                "SELECT count(*) FROM t", use_result_cache=False
            )
            assert service.cancel(queued.query_id) is True
            with pytest.raises(QueryCancelled):
                queued.result(timeout=30)
            running.result(timeout=120)
        cancelled = [
            r
            for r in telemetry.slowlog.snapshot()
            if r["status"] == "cancelled"
        ]
        assert len(cancelled) == 1
        assert cancelled[0]["query_id"] == queued.query_id
        assert telemetry.recorder.snapshot(kind="query.cancel")

    def test_health_sampler_sample_now(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with service_for(db, health_interval_s=0) as service:
            session = service.session()
            session.execute("SELECT count(*) FROM t", timeout=60)
            sample = service.health.sample_now()
        assert sample["queue_depth"] == 0
        assert sample["running"] == 0
        assert "plan_cache_hit_rate" in sample
        assert "spill_bytes_written" in sample
        assert telemetry.health_snapshot()[-1]["wall"] == sample["wall"]

    def test_health_series_is_bounded(self):
        telemetry = fresh_telemetry(health_capacity=3)
        for i in range(10):
            telemetry.record_health({"queue_depth": i})
        samples = telemetry.health_snapshot()
        assert [s["queue_depth"] for s in samples] == [7, 8, 9]

    def test_stats_embed_telemetry_summary(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with service_for(db, health_interval_s=0) as service:
            session = service.session()
            session.execute("SELECT count(*) FROM t", timeout=60)
            summary = service.stats()["telemetry"]
        assert summary["queries_recorded"] == 1
        assert summary["events_dropped"] == 0
        assert summary["fingerprints"] == 1


class TestVerifierEvent:
    def test_verification_failure_leaves_breadcrumb(self):
        previous = GLOBAL_TELEMETRY.enabled
        GLOBAL_TELEMETRY.enabled = True
        seq_before = GLOBAL_TELEMETRY.recorder.recorded
        try:
            with pytest.raises(PlanVerificationError):
                verify_dag(Dag(), context="test-dag")
        finally:
            GLOBAL_TELEMETRY.enabled = previous
        events = [
            e
            for e in GLOBAL_TELEMETRY.recorder.snapshot(
                kind="verifier.diagnostic"
            )
            if e["seq"] > seq_before
        ]
        assert events
        assert events[-1]["context"] == "test-dag"
        assert events[-1]["codes"] == ["no-sink"]


# ---------------------------------------------------------------------------
# Disabled path: one branch, zero allocations
# ---------------------------------------------------------------------------
class TestDisabledPath:
    def test_disabled_records_nothing(self):
        telemetry = Telemetry(TelemetryConfig(enabled=False))
        db = make_db(telemetry)
        db.sql("SELECT g, sum(x) FROM t GROUP BY g")
        db.sql("SELECT count(*) FROM t")
        assert telemetry.queries_recorded == 0
        assert telemetry.recorder.recorded == 0
        assert len(telemetry.workload) == 0
        assert telemetry.slowlog.observed == 0

    def test_disabled_allocates_no_query_records(self, monkeypatch):
        # Count-based (not timing-based): the disabled path must not even
        # construct a QueryRecord.
        constructions = []

        class CountingRecord(QueryRecord):
            def __init__(self, *args, **kwargs):
                constructions.append(1)
                super().__init__(*args, **kwargs)

        import repro.api as api_module

        monkeypatch.setattr(api_module, "QueryRecord", CountingRecord)
        telemetry = Telemetry(TelemetryConfig(enabled=False))
        db = make_db(telemetry)
        db.sql("SELECT count(*) FROM t")
        assert constructions == []
        telemetry.enable()
        db.sql("SELECT count(*) FROM t")
        assert len(constructions) == 1

    def test_disabled_context_manager(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with telemetry.disabled():
            db.sql("SELECT count(*) FROM t")
        assert telemetry.queries_recorded == 0
        db.sql("SELECT count(*) FROM t")
        assert telemetry.queries_recorded == 1

    def test_disabled_service_takes_no_events(self):
        telemetry = Telemetry(TelemetryConfig(enabled=False))
        db = make_db(telemetry)
        with service_for(db, health_interval_s=0) as service:
            session = service.session()
            session.execute("SELECT count(*) FROM t", timeout=60)
            assert service.health.running is False
        assert telemetry.recorder.recorded == 0


# ---------------------------------------------------------------------------
# Environment overrides and error dumps
# ---------------------------------------------------------------------------
class TestConfig:
    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        assert TelemetryConfig().enabled is False
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        assert TelemetryConfig().enabled is True

    def test_env_slow_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_SLOW_MS", "250")
        assert TelemetryConfig().slow_query_threshold_s == 0.25

    def test_env_dump_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY_DUMP_DIR", str(tmp_path))
        assert TelemetryConfig().dump_on_error_dir == str(tmp_path)

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        assert TelemetryConfig(enabled=True).enabled is True

    def test_error_dump_written_and_rate_limited(self, tmp_path):
        telemetry = fresh_telemetry(dump_on_error_dir=str(tmp_path))
        db = make_db(telemetry)
        for _ in range(3):
            with pytest.raises(ReproError):
                db.sql("SELECT definitely broken syntax !!!")
        dumps = [n for n in os.listdir(tmp_path) if n.startswith("flight_")]
        assert len(dumps) == 1  # rate limit: one dump per interval
        doc = json.load(open(tmp_path / dumps[0]))
        assert any(e["kind"] == "query.error" for e in doc["events"])


# ---------------------------------------------------------------------------
# Report, renderer, dump file, CLI tool
# ---------------------------------------------------------------------------
def _load_report_tool():
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tools",
        "telemetry_report.py",
    )
    spec = importlib.util.spec_from_file_location("telemetry_report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReport:
    def _loaded_telemetry(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with service_for(db, health_interval_s=0) as service:
            session = service.session()
            for sql in (
                "SELECT g, sum(x) FROM t GROUP BY g",
                "SELECT g, median(x) FROM t GROUP BY g",
                "SELECT count(*) FROM t",
            ):
                session.execute(sql, timeout=60)
            service.health.sample_now()
        return telemetry

    def test_report_document_shape(self):
        telemetry = self._loaded_telemetry()
        report = telemetry.report()
        assert report["schema"] == 1
        assert report["queries_recorded"] == 3
        assert report["flight_recorder"]["dropped"] == 0
        assert report["workload"]["tracked"] == 3
        assert report["slow_queries"]["observed"] == 3
        assert len(report["health"]["samples"]) == 1
        json.dumps(report)  # fully serializable

    def test_render_report_text(self):
        telemetry = self._loaded_telemetry()
        text = render_report(telemetry.report())
        assert "service telemetry — 3 queries recorded" in text
        assert "flight recorder:" in text
        assert "fingerprints tracked" in text
        assert "p95~" in text
        assert "drifting templates: none" in text
        assert "health samples: 1" in text

    def test_dump_and_cli_assertions(self, tmp_path):
        telemetry = self._loaded_telemetry()
        path = str(tmp_path / "telemetry.json")
        telemetry.dump(path)
        tool = _load_report_tool()
        assert tool.main([path]) == 0
        assert (
            tool.main(
                [path, "--assert-min-fingerprints", "1",
                 "--assert-zero-dropped"]
            )
            == 0
        )
        assert tool.main([path, "--assert-min-fingerprints", "999"]) == 1
        assert tool.main([path, "--json"]) == 0

    def test_cli_rejects_garbage(self, tmp_path):
        tool = _load_report_tool()
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert tool.main([str(bad)]) == 2
        assert tool.main([str(tmp_path / "missing.json")]) == 2

    def test_reset_clears_every_sink(self):
        telemetry = self._loaded_telemetry()
        telemetry.reset()
        assert telemetry.queries_recorded == 0
        assert telemetry.recorder.recorded == 0
        assert len(telemetry.workload) == 0
        assert telemetry.health_snapshot() == []


# ---------------------------------------------------------------------------
# Satellites: histogram quantiles, chrome-trace attribution
# ---------------------------------------------------------------------------
class TestHistogramQuantiles:
    def test_to_dict_quantiles_block(self):
        histogram = Histogram((0.001, 0.01, 0.1, 1.0))
        for value in (0.002, 0.003, 0.004, 0.005, 0.5):
            histogram.observe(value)
        doc = histogram.to_dict()
        quantiles = doc["quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        # Interpolated-within-bucket semantics: rank 2.5 of 5 lands in the
        # (0.001, 0.01] bucket holding 4 observations -> 0.001 + 0.625 *
        # 0.009; p95/p99 land in the (0.1, 1.0] bucket at ranks 4.75/4.95.
        assert quantiles["p50"] == pytest.approx(0.006625)
        assert quantiles["p95"] == pytest.approx(0.775)
        assert quantiles["p99"] == pytest.approx(0.955)
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]
        # Regression vs. the bucket-upper-bound bias: the interpolated
        # percentile must be strictly below the old upper-bound answers
        # (0.01 for p50, 1.0 for p95/p99) and within a bucket width of the
        # exact raw-sample percentile bench_server_throughput computes.
        assert quantiles["p50"] < 0.01 and quantiles["p95"] < 1.0
        exact = float(np.percentile([0.002, 0.003, 0.004, 0.005, 0.5], 95))
        assert abs(quantiles["p95"] - exact) <= 1.0 - 0.1


class TestChromeTraceAttribution:
    def test_span_args_carry_query_and_session(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        config = db.config.clone(
            collect_trace=True, query_id="q42", session_id="s7"
        )
        result = db.sql("SELECT g, sum(x) FROM t GROUP BY g", config=config)
        assert result.trace.query_id == "q42"
        assert result.trace.session_id == "s7"
        events = chrome_trace_events(result.trace)
        spans = [e for e in events if e.get("ph") == "X"]
        assert spans
        for event in spans:
            assert event["args"]["query_id"] == "q42"
            assert event["args"]["session"] == "s7"

    def test_unattributed_trace_has_no_id_args(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        result = db.sql(
            "SELECT count(*) FROM t",
            config=db.config.clone(collect_trace=True),
        )
        events = chrome_trace_events(result.trace)
        spans = [e for e in events if e.get("ph") == "X"]
        assert spans
        assert all("query_id" not in e["args"] for e in spans)


# ---------------------------------------------------------------------------
# Concurrent load: the acceptance-shaped end-to-end run (kept small)
# ---------------------------------------------------------------------------
class TestConcurrentLoad:
    def test_eight_clients_full_report(self):
        telemetry = fresh_telemetry(ring_capacity=16_384)
        db = make_db(telemetry, rows=1500)
        mix = [
            "SELECT count(*) FROM t",
            "SELECT g, sum(x) FROM t GROUP BY g",
            "SELECT g, median(x) FROM t GROUP BY g",
        ]
        errors = []
        with service_for(db, max_concurrent=4, health_interval_s=0) as service:

            def client(index):
                session = service.session()
                rng = np.random.default_rng(100 + index)
                for _ in range(4):
                    sql = mix[int(rng.integers(len(mix)))]
                    try:
                        session.execute(sql, timeout=120)
                    except Exception as exc:  # noqa: BLE001 — asserted below
                        errors.append(exc)

            workers = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(120)
            service.health.sample_now()

        assert errors == []
        assert telemetry.queries_recorded == 32
        assert telemetry.recorder.dropped == 0
        report = telemetry.report()
        assert 1 <= report["workload"]["tracked"] <= len(mix)
        assert sum(
            e["count"] for e in report["workload"]["templates"]
        ) == 32
        assert report["health"]["samples"]
        text = render_report(report)
        assert "32 queries recorded" in text

    def test_event_kinds_stay_in_vocabulary(self):
        telemetry = fresh_telemetry()
        db = make_db(telemetry)
        with service_for(db, health_interval_s=0) as service:
            session = service.session()
            session.execute("SELECT count(*) FROM t", timeout=60)
            session.execute("SELECT count(*) FROM t", timeout=60)
        kinds = {e["kind"] for e in telemetry.recorder.snapshot()}
        assert kinds <= set(EVENT_KINDS)


class TestSnapshotTelemetryBlock:
    def test_validator_accepts_and_rejects(self):
        from repro.bench.snapshot import validate_snapshot

        doc = {
            "schema_version": 1,
            "pr": 7,
            "created_utc": "2026-01-01T00:00:00Z",
            "host": {
                "cpu_count": 1,
                "platform": "Linux",
                "machine": "x86_64",
                "python": "3.12",
            },
            "config": {"scale_factor": 0.01, "threads": 1, "repeats": 1},
            "families": {
                "f": {
                    "description": "d",
                    "engine_profile": {},
                    "queries": {
                        "q": {
                            "wall_s": 0.1,
                            "parallel_wall_s": 0.1,
                            "parallel_speedup": 1.0,
                            "rows": 1,
                            "verified": True,
                        }
                    },
                }
            },
            "server": {
                "throughput_qps": 1.0,
                "completed": 1,
                "incorrect": 0,
                "latency_ms": {"p50": 1, "p95": 1, "p99": 1, "mean": 1},
                "plan_cache_hit_rate": 0.5,
                "telemetry": {
                    "queries_recorded": 1,
                    "events_recorded": 2,
                    "events_dropped": 0,
                    "fingerprints": 1,
                    "slow_queries": 0,
                },
            },
            "correctness": {"queries_verified": 1, "mismatches": []},
        }
        assert validate_snapshot(doc) == []
        # The block is optional (pre-PR-7 snapshots lack it) ...
        del doc["server"]["telemetry"]
        assert validate_snapshot(doc) == []
        # ... but a malformed one is an error.
        doc["server"]["telemetry"] = {"queries_recorded": -1}
        errors = validate_snapshot(doc)
        assert any("telemetry" in e for e in errors)
