"""Tests for semantic analysis: plan shapes, normalization, decomposition."""

import pytest

from repro.errors import BindError, NotSupportedError
from repro.expr.nodes import ColumnRef
from repro.logical import Aggregate, Filter, Join, JoinKind, Limit, Project, Sort, UnionAll, Window
from repro.sql import bind, parse_sql
from repro.storage import Catalog
from repro.types import DataType


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_table(
        "r", {"a": "int64", "b": "float64", "c": "float64", "d": "date", "s": "string"}
    )
    cat.create_table("m", {"a": "int64", "v": "int64"})
    return cat


def plan_of(catalog, sql):
    return bind(parse_sql(sql), catalog)


def find(plan, kind):
    """First node of the given type in a pre-order walk."""
    if isinstance(plan, kind):
        return plan
    for child in plan.children:
        found = find(child, kind)
        if found is not None:
            return found
    return None


class TestNormalization:
    def test_aggregate_args_are_column_refs(self, catalog):
        plan = plan_of(catalog, "SELECT a, sum(b * 2) FROM r GROUP BY a")
        agg = find(plan, Aggregate)
        assert all(
            isinstance(arg, ColumnRef)
            for call in agg.aggregates
            for arg in call.args
        )
        # The child projection computes the argument expression.
        child = agg.child
        assert isinstance(child, Project)
        assert any(not isinstance(e, ColumnRef) for _, e in child.items)

    def test_group_keys_are_columns(self, catalog):
        plan = plan_of(catalog, "SELECT a + 1, count(*) FROM r GROUP BY a + 1")
        agg = find(plan, Aggregate)
        assert agg.group_names == ["_g0"]

    def test_shared_subaggregates(self, catalog):
        """avg and var_pop share SUM/COUNT (paper Figure 3 query 0)."""
        plan = plan_of(
            catalog, "SELECT a, avg(b), var_pop(b), sum(b), count(b) FROM r GROUP BY a"
        )
        agg = find(plan, Aggregate)
        # sum(b), count(b), sum(b*b): exactly three primitive aggregates.
        assert len(agg.aggregates) == 3
        funcs = sorted(c.func for c in agg.aggregates)
        assert funcs == ["count", "sum", "sum"]

    def test_duplicate_aggregates_interned(self, catalog):
        plan = plan_of(catalog, "SELECT sum(b), sum(b) + 1 FROM r GROUP BY a")
        agg = find(plan, Aggregate)
        assert len(agg.aggregates) == 1


class TestDecomposition:
    def test_median_is_percentile_cont(self, catalog):
        plan = plan_of(catalog, "SELECT median(b) FROM r GROUP BY a")
        agg = find(plan, Aggregate)
        assert agg.aggregates[0].func == "percentile_cont"
        assert agg.aggregates[0].fraction == 0.5

    def test_mad_builds_window_stage(self, catalog):
        plan = plan_of(catalog, "SELECT mad(b) FROM r GROUP BY a")
        window = find(plan, Window)
        assert window is not None
        assert window.calls[0].func == "percentile_cont"
        assert [r.name for r in window.calls[0].partition_by] == ["a"]

    def test_mssd_builds_lead_window(self, catalog):
        plan = plan_of(
            catalog, "SELECT mssd(b) WITHIN GROUP (ORDER BY d) FROM r GROUP BY a"
        )
        window = find(plan, Window)
        assert window.calls[0].func == "lead"
        agg = find(plan, Aggregate)
        assert sorted(c.func for c in agg.aggregates) == ["count", "sum"]

    def test_nested_aggregate_becomes_window(self, catalog):
        plan = plan_of(
            catalog, "SELECT median(b - median(b)) FROM r GROUP BY a"
        )
        window = find(plan, Window)
        assert window.calls[0].func == "percentile_cont"
        assert window.calls[0].frame.is_whole_partition

    def test_window_inside_aggregate_hoisted(self, catalog):
        plan = plan_of(
            catalog,
            "SELECT sum(pow(lead(b) OVER (PARTITION BY a ORDER BY d) - b, 2)) "
            "FROM r GROUP BY a",
        )
        window = find(plan, Window)
        agg = find(plan, Aggregate)
        assert window is not None and agg is not None
        # Window sits below the aggregation.
        assert find(agg, Window) is window

    def test_avg_window_decomposed(self, catalog):
        plan = plan_of(
            catalog, "SELECT avg(b) OVER (PARTITION BY a ORDER BY d) FROM r"
        )
        window = find(plan, Window)
        assert sorted(c.func for c in window.calls) == ["count", "sum"]


class TestJoins:
    def test_equi_keys_extracted(self, catalog):
        plan = plan_of(catalog, "SELECT v FROM r JOIN m ON r.a = m.a")
        join = find(plan, Join)
        assert join.left_keys == ["a"] and join.right_keys == ["a"]

    def test_side_filters_pushed(self, catalog):
        plan = plan_of(
            catalog, "SELECT v FROM r JOIN m ON r.a = m.a AND v > 3 AND b < 1"
        )
        join = find(plan, Join)
        assert isinstance(join.left, Filter)   # b < 1
        assert isinstance(join.right, Filter)  # v > 3

    def test_residual_becomes_post_filter(self, catalog):
        plan = plan_of(
            catalog, "SELECT v FROM r JOIN m ON r.a = m.a AND b < v"
        )
        assert isinstance(find(plan, Project).child, Filter)

    def test_exists_becomes_semi_join(self, catalog):
        plan = plan_of(
            catalog,
            "SELECT b FROM r WHERE EXISTS (SELECT 1 FROM m WHERE m.a = r.a AND v > 0)",
        )
        join = find(plan, Join)
        assert join.kind is JoinKind.SEMI
        assert isinstance(join.right, Filter)

    def test_not_exists_becomes_anti_join(self, catalog):
        plan = plan_of(
            catalog,
            "SELECT b FROM r WHERE NOT EXISTS (SELECT 1 FROM m WHERE m.a = r.a)",
        )
        assert find(plan, Join).kind is JoinKind.ANTI

    def test_join_without_equality_rejected(self, catalog):
        with pytest.raises(NotSupportedError):
            plan_of(catalog, "SELECT 1 FROM r JOIN m ON b < v")

    def test_self_join_renames(self, catalog):
        plan = plan_of(
            catalog, "SELECT m1.v, m2.v FROM m m1 JOIN m m2 ON m1.a = m2.a"
        )
        assert plan.schema.names() == ["v", "v_1"]


class TestOrderingAndLimits:
    def test_order_by_alias(self, catalog):
        plan = plan_of(catalog, "SELECT a, sum(b) AS s FROM r GROUP BY a ORDER BY s")
        assert isinstance(plan, Sort) and plan.keys == [("s", False)]

    def test_order_by_position(self, catalog):
        plan = plan_of(catalog, "SELECT a, b FROM r ORDER BY 2 DESC")
        assert plan.keys == [("b", True)]

    def test_order_by_position_out_of_range(self, catalog):
        with pytest.raises(BindError):
            plan_of(catalog, "SELECT a FROM r ORDER BY 5")

    def test_limit_offset(self, catalog):
        plan = plan_of(catalog, "SELECT a FROM r LIMIT 3 OFFSET 1")
        assert isinstance(plan, Limit)
        assert (plan.limit, plan.offset) == (3, 1)


class TestMisc:
    def test_date_coercion(self, catalog):
        plan = plan_of(catalog, "SELECT a FROM r WHERE d >= '1995-01-01'")
        predicate = find(plan, Filter).predicate
        from repro.expr.nodes import Literal

        assert isinstance(predicate.right, Literal)
        assert predicate.right.dtype is DataType.DATE

    def test_union_all_types_checked(self, catalog):
        with pytest.raises(Exception):
            plan_of(catalog, "SELECT a FROM r UNION ALL SELECT s FROM r")

    def test_union_all_plan(self, catalog):
        plan = plan_of(catalog, "SELECT a FROM r UNION ALL SELECT v FROM m")
        assert isinstance(plan, UnionAll)

    def test_select_star_expands(self, catalog):
        plan = plan_of(catalog, "SELECT * FROM m")
        assert plan.schema.names() == ["a", "v"]

    def test_distinct_becomes_aggregate(self, catalog):
        plan = plan_of(catalog, "SELECT DISTINCT a FROM r")
        assert isinstance(plan, Aggregate)
        assert plan.aggregates == []

    def test_grouping_sets_indices(self, catalog):
        plan = plan_of(
            catalog, "SELECT sum(b) FROM r GROUP BY GROUPING SETS ((a, s), (a))"
        )
        agg = find(plan, Aggregate)
        assert agg.grouping_sets == [("a", "s"), ("a",)]
        assert "grouping_id" in agg.schema.names()
        assert agg.grouping_id_of(("a",)) == 1
        assert agg.grouping_id_of(("a", "s")) == 0

    def test_cte_binds(self, catalog):
        plan = plan_of(
            catalog,
            "WITH t AS (SELECT a, b FROM r) SELECT a, sum(b) FROM t GROUP BY a",
        )
        assert find(plan, Aggregate) is not None


class TestBindErrors:
    def test_unknown_column(self, catalog):
        with pytest.raises(BindError):
            plan_of(catalog, "SELECT zz FROM r")

    def test_unknown_table(self, catalog):
        with pytest.raises(Exception):
            plan_of(catalog, "SELECT 1 FROM nope")

    def test_bare_column_without_group(self, catalog):
        with pytest.raises(BindError):
            plan_of(catalog, "SELECT b, sum(b) FROM r GROUP BY a")

    def test_window_requires_over(self, catalog):
        with pytest.raises(BindError):
            plan_of(catalog, "SELECT row_number() FROM r")

    def test_percentile_requires_within_group(self, catalog):
        with pytest.raises(BindError):
            plan_of(catalog, "SELECT percentile_disc(0.5) FROM r GROUP BY a")

    def test_percentile_fraction_range(self, catalog):
        with pytest.raises(BindError):
            plan_of(
                catalog,
                "SELECT percentile_disc(1.5) WITHIN GROUP (ORDER BY b) "
                "FROM r GROUP BY a",
            )

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            plan_of(catalog, "SELECT a FROM r WHERE sum(b) > 1")

    def test_ambiguous_column(self, catalog):
        with pytest.raises(BindError):
            plan_of(catalog, "SELECT a FROM r JOIN m ON r.a = m.a WHERE a > 0")
