"""Unit tests for ``tools/lint_engine.py`` (rules R1-R4).

Every rule gets a *firing* corpus — a synthetic source tree seeded with
exactly the defect the rule exists to catch, asserted at the right path
and line — and a *clean* corpus proving the fix silences it. The
buffer-mutator set is additionally pinned: the fallback literal must
equal the set derived from the real ``storage/buffer.py`` by assignment
dataflow, so the two can never drift apart again.
"""

from __future__ import annotations

import ast
import importlib.util
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def lint_engine():
    spec = importlib.util.spec_from_file_location(
        "lint_engine_under_test", REPO_ROOT / "tools" / "lint_engine.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_corpus(tmp_path: Path, files: dict) -> Path:
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return tmp_path


def _line_of(root: Path, rel: str, needle: str) -> int:
    for number, line in enumerate(
        (root / rel).read_text().splitlines(), start=1
    ):
        if needle in line:
            return number
    raise AssertionError(f"{needle!r} not found in {rel}")


def _registry(*ops: str) -> str:
    """A minimal ``lolepop/properties.py`` registering ``ops`` — keeps R4
    quiet for the classes a corpus intends to be contract-complete."""
    lines = ["class OperatorContract:\n    pass\n\n"]
    lines += [f"OperatorContract(op={name})\n" for name in ops]
    return "".join(lines)


# ----------------------------------------------------------------------
# R1: declared produces vs. classified execute returns
# ----------------------------------------------------------------------
_R1_OP = """
    class Lolepop:
        pass


    class StreamyOp(Lolepop):
        produces = {produces!r}

        def execute(self, ctx, inputs):
            out = TupleBuffer(self.schema)
            return out
    """


def test_r1_kind_vs_return_fires(lint_engine, tmp_path):
    root = _write_corpus(tmp_path, {
        "lolepop/ops.py": _R1_OP.format(produces="stream"),
        "lolepop/properties.py": _registry("StreamyOp"),
    })
    findings = lint_engine.lint(root)
    assert [f.rule for f in findings] == ["kind-vs-return"]
    assert findings[0].path.name == "ops.py"
    assert findings[0].line == _line_of(root, "lolepop/ops.py", "return out")
    assert "produces='stream'" in findings[0].message


def test_r1_clean_when_declaration_matches(lint_engine, tmp_path):
    root = _write_corpus(tmp_path, {
        "lolepop/ops.py": _R1_OP.format(produces="buffer"),
        "lolepop/properties.py": _registry("StreamyOp"),
    })
    assert lint_engine.lint(root) == []


# ----------------------------------------------------------------------
# R2: TupleBuffer mutation without mutates_input = True
# ----------------------------------------------------------------------
_R2_OP = """
    class Lolepop:
        pass


    class ReorderOp(Lolepop):
        produces = "buffer"
    {declaration}
        def execute(self, ctx, inputs):
            buf = inputs[0]
            buf.sort_inplace(["k"])
            return buf
    """


def test_r2_undeclared_mutation_fires(lint_engine, tmp_path):
    root = _write_corpus(tmp_path, {
        "lolepop/ops.py": _R2_OP.format(declaration=""),
        "lolepop/properties.py": _registry("ReorderOp"),
    })
    findings = lint_engine.lint(root)
    assert [f.rule for f in findings] == ["undeclared-mutation"]
    assert findings[0].line == _line_of(
        root, "lolepop/ops.py", "buf.sort_inplace"
    )
    assert "mutates_input" in findings[0].message


def test_r2_clean_when_mutation_declared(lint_engine, tmp_path):
    root = _write_corpus(tmp_path, {
        "lolepop/ops.py": _R2_OP.format(
            declaration="    mutates_input = True\n"
        ),
        "lolepop/properties.py": _registry("ReorderOp"),
    })
    assert lint_engine.lint(root) == []


def test_r2_flags_writes_through_input_buffers(lint_engine, tmp_path):
    root = _write_corpus(tmp_path, {
        "lolepop/ops.py": """
            class Lolepop:
                pass


            class PokeOp(Lolepop):
                produces = "buffer"

                def execute(self, ctx, inputs):
                    buf = inputs[0]
                    buf.partitions[0] = None
                    return buf
            """,
        "lolepop/properties.py": _registry("PokeOp"),
    })
    findings = lint_engine.lint(root)
    assert [f.rule for f in findings] == ["undeclared-mutation"]
    assert findings[0].line == _line_of(
        root, "lolepop/ops.py", "buf.partitions[0]"
    )


def test_r2_mutator_set_derived_from_corpus_buffer_source(
    lint_engine, tmp_path
):
    """When the scanned tree ships its own ``storage/buffer.py``, the
    mutator set comes from *that* source, not the fallback literal: a
    method found only in the corpus buffer (``munge``) fires, and a
    fallback-only name (``sort_inplace``) does not."""
    root = _write_corpus(tmp_path, {
        "storage/buffer.py": """
            class TupleBuffer:
                def munge(self, rows):
                    self.rows = rows

                def peek(self):
                    return self.rows
            """,
        "lolepop/ops.py": """
            class Lolepop:
                pass


            class MungeOp(Lolepop):
                produces = "buffer"

                def execute(self, ctx, inputs):
                    buf = inputs[0]
                    buf.munge([])
                    buf.sort_inplace(["k"])
                    return buf
            """,
        "lolepop/properties.py": _registry("MungeOp"),
    })
    findings = lint_engine.lint(root)
    assert [f.rule for f in findings] == ["undeclared-mutation"]
    assert findings[0].line == _line_of(root, "lolepop/ops.py", "buf.munge")


# ----------------------------------------------------------------------
# R3: raw writes to GLOBAL_METRICS primitives
# ----------------------------------------------------------------------
def test_r3_unlocked_metrics_fires(lint_engine, tmp_path):
    root = _write_corpus(tmp_path, {
        "server/handlers.py": """
            from repro.observability.metrics import GLOBAL_METRICS


            def record(n):
                GLOBAL_METRICS.counter("queries").value = n
            """,
        "lolepop/properties.py": _registry(),
    })
    findings = lint_engine.lint(root)
    assert [f.rule for f in findings] == ["unlocked-metrics"]
    assert findings[0].line == _line_of(
        root, "server/handlers.py", ".value = n"
    )


def test_r3_clean_through_locked_api_and_inside_metrics_py(
    lint_engine, tmp_path
):
    root = _write_corpus(tmp_path, {
        "server/handlers.py": """
            from repro.observability.metrics import GLOBAL_METRICS


            def record(n):
                GLOBAL_METRICS.counter("queries").inc(n)
            """,
        # The primitives' own module may touch .value directly.
        "observability/metrics.py": """
            def reset_for_test(metric):
                GLOBAL_METRICS.counter("queries").value = 0.0
            """,
        "lolepop/properties.py": _registry(),
    })
    assert lint_engine.lint(root) == []


# ----------------------------------------------------------------------
# R4: contract registration completeness
# ----------------------------------------------------------------------
def test_r4_unregistered_operator_fires(lint_engine, tmp_path):
    root = _write_corpus(tmp_path, {
        "lolepop/ops.py": """
            class Lolepop:
                pass


            class RegisteredOp(Lolepop):
                produces = "stream"


            class OrphanOp(Lolepop):
                produces = "stream"
            """,
        "lolepop/properties.py": _registry("RegisteredOp"),
    })
    findings = lint_engine.lint(root)
    assert [f.rule for f in findings] == ["unregistered-operator"]
    assert "OrphanOp" in findings[0].message
    assert findings[0].line == _line_of(
        root, "lolepop/ops.py", "class OrphanOp"
    )


def test_r4_reports_missing_registry(lint_engine, tmp_path):
    root = _write_corpus(tmp_path, {
        "lolepop/ops.py": """
            class Lolepop:
                pass
            """,
    })
    findings = lint_engine.lint(root)
    assert [f.rule for f in findings] == ["unregistered-operator"]
    assert "not found" in findings[0].message


# ----------------------------------------------------------------------
# De-drift: fallback literal == derived set == real buffer source
# ----------------------------------------------------------------------
def test_fallback_literal_matches_derived_mutator_set(lint_engine):
    from repro.analysis.astutils import derive_mutating_methods

    tree = ast.parse(
        (REPO_ROOT / "src" / "repro" / "storage" / "buffer.py").read_text()
    )
    assert derive_mutating_methods(tree) == set(
        lint_engine.MUTATING_BUFFER_METHODS
    )


def test_real_source_tree_is_lint_clean(lint_engine):
    findings = lint_engine.lint(REPO_ROOT / "src")
    assert findings == [], "\n".join(str(f) for f in findings)
