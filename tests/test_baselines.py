"""Behavioral tests of the baseline engines: they must exhibit the
architectural traits the paper attributes to the systems they stand in for
(not just produce correct answers)."""

import numpy as np
import pytest

from repro import Database, EngineConfig

from tests.helpers import normalized_rows


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", {"g": "int64", "h": "int64", "x": "float64"})
    rng = np.random.default_rng(2)
    n = 2000
    database.insert(
        "t",
        {
            "g": rng.integers(0, 20, n),
            "h": rng.integers(0, 3, n),
            "x": rng.random(n).round(3),
        },
    )
    return database


def trace_of(db, sql, engine, threads=2):
    config = EngineConfig(num_threads=threads, num_partitions=8, collect_trace=True)
    result = db.sql(sql, engine=engine, config=config)
    return result.trace


class TestMonolithicTraits:
    def test_grouping_sets_duplicate_input_scans(self, db):
        """HyPer computes each grouping set independently (UNION ALL): the
        input is scanned once per set; the LOLEPOP engine scans it once."""
        sql = "SELECT g, h, sum(x) FROM t GROUP BY GROUPING SETS ((g,h),(g),(h))"
        mono = trace_of(db, sql, "monolithic")
        lol = trace_of(db, sql, "lolepop")
        mono_scans = sum(1 for r in mono.records if r.operator == "tablescan")
        lol_scans = sum(1 for r in lol.records if r.operator == "tablescan")
        assert mono_scans >= 3 * lol_scans

    def test_ordered_set_goes_through_window(self, db):
        """The §2 rewrite: percentiles run in a WINDOW operator followed by
        a hash GROUP BY with ANY."""
        sql = (
            "SELECT g, percentile_disc(0.5) WITHIN GROUP (ORDER BY x) "
            "FROM t GROUP BY g"
        )
        mono = trace_of(db, sql, "monolithic")
        assert "window" in mono.operators()
        assert "groupby" in mono.operators()
        lol = trace_of(db, sql, "lolepop")
        assert "ordagg" in lol.operators()
        assert all("hashagg" not in op for op in lol.operators())

    def test_monolithic_sorts_are_not_splittable(self, db):
        """With one huge partition-key group, the monolithic window sort
        cannot use more than one thread; the LOLEPOP sort splits."""
        database = Database()
        database.create_table("o", {"g": "int64", "x": "float64"})
        rng = np.random.default_rng(0)
        n = 30_000
        database.insert(
            "o", {"g": np.zeros(n, dtype=np.int64), "x": rng.random(n)}
        )
        sql = "SELECT sum(x) OVER (PARTITION BY g ORDER BY x) AS c FROM o"
        config = EngineConfig(num_threads=8, num_partitions=8, collect_trace=True)
        mono = database.sql(sql, engine="monolithic", config=config)
        lol = database.sql(sql, engine="lolepop", config=config)
        mono_sort = [r for r in mono.trace.records if "sort" in r.operator]
        lol_sort = [r for r in lol.trace.records if r.operator == "sort"]
        # Monolithic: one sort work item; LOLEPOP: split into ~8 chunks.
        assert len(mono_sort) == 1
        assert len(lol_sort) >= 4

    def test_results_still_correct(self, db):
        sql = "SELECT g, percentile_disc(0.5) WITHIN GROUP (ORDER BY x) FROM t GROUP BY g"
        assert normalized_rows(db.sql(sql, engine="monolithic")) == normalized_rows(
            db.sql(sql, engine="naive")
        )


class TestColumnarTraits:
    def test_single_threaded(self, db):
        sql = "SELECT g, sum(x) FROM t GROUP BY g"
        result = db.sql(sql, engine="columnar", config=EngineConfig(num_threads=8))
        assert result.simulated_time == pytest.approx(result.serial_time)

    def test_answers_match(self, db):
        sql = "SELECT g, h, sum(x) FROM t GROUP BY GROUPING SETS ((g,h),(h))"
        assert normalized_rows(db.sql(sql, engine="columnar")) == normalized_rows(
            db.sql(sql, engine="naive")
        )


class TestNaiveEngine:
    def test_runs_tpch_q12(self, tpch_db):
        from repro.tpch import TPCH_QUERIES

        result = tpch_db.sql(TPCH_QUERIES["q12"], engine="naive")
        assert result.schema.names() == [
            "l_shipmode", "high_line_count", "low_line_count",
        ]
        assert [r[0] for r in result.rows()] == ["MAIL", "SHIP"]

    def test_no_parallel_speedup(self, db):
        result = db.sql(
            "SELECT g, sum(x) FROM t GROUP BY g",
            engine="naive",
            config=EngineConfig(num_threads=16),
        )
        assert result.simulated_time == result.serial_time
