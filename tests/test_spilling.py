"""Tests for the spilling LOLEPOP variants (paper §7 future work)."""

import os

import numpy as np
import pytest

from repro import Database, EngineConfig
from repro.storage import Batch, TupleBuffer
from repro.storage.spill import SpillManager, approx_batch_bytes
from repro.types import Schema

from tests.helpers import normalized_rows

SCHEMA = Schema.of(("k", "int64"), ("v", "float64"), ("s", "string"))


def make_batch(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return Batch.from_pydict(
        SCHEMA,
        {
            "k": [int(x) for x in rng.integers(0, 10, n)],
            "v": [float(x) for x in rng.random(n)],
            "s": [f"s{x}" for x in rng.integers(0, 5, n)],
        },
    )


class TestSpillManager:
    def test_roundtrip(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        batch = make_batch(50)
        path = manager.write_batch(batch)
        assert os.path.exists(path)
        loaded = manager.read_batch(path, SCHEMA)
        assert list(loaded.rows()) == list(batch.rows())

    def test_roundtrip_with_nulls(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        batch = Batch.from_pydict(
            SCHEMA, {"k": [1, None], "v": [None, 2.0], "s": ["a", None]}
        )
        loaded = manager.read_batch(manager.write_batch(batch), SCHEMA)
        assert list(loaded.rows()) == [(1, None, "a"), (None, 2.0, None)]

    def test_release_deletes(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        path = manager.write_batch(make_batch(5))
        manager.release(path)
        assert not os.path.exists(path)

    def test_cleanup_removes_own_directory(self):
        manager = SpillManager()
        manager.write_batch(make_batch(5))
        directory = manager.directory
        manager.cleanup()
        assert not os.path.exists(directory)

    def test_byte_estimate_positive(self):
        assert approx_batch_bytes(make_batch(10)) > 0


class TestBufferSpilling:
    def test_partition_spill_and_reload(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        buffer = TupleBuffer(SCHEMA, 4, ("k",))
        buffer.append_partitioned(make_batch(200))
        partition = next(p for p in buffer.partitions if p.num_rows)
        rows_before = list(partition.ordered_batch().rows())
        count = partition.num_rows
        partition.spill(manager)
        assert partition.is_spilled
        assert partition.num_rows == count  # row count survives spilling
        assert list(partition.ordered_batch().rows()) == rows_before
        assert not partition.is_spilled  # access loads it back

    def test_spill_over_budget(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        buffer = TupleBuffer(SCHEMA, 4, ("k",))
        buffer.append_partitioned(make_batch(500))
        buffer.enable_spilling(manager, memory_budget=0)
        spilled = buffer.spill_over_budget()
        assert spilled >= 1
        assert buffer.approx_bytes() == 0
        # All rows still reachable.
        assert sum(len(b) for b in buffer.scan_batches()) == 500

    def test_spilled_sort_preserves_order(self, tmp_path):
        manager = SpillManager(str(tmp_path))
        buffer = TupleBuffer(SCHEMA, 2, ("k",))
        buffer.append_partitioned(make_batch(300))
        for partition in buffer.partitions:
            partition.spill(manager)
        for partition in buffer.partitions:
            partition.sort_inplace(["k", "v"], [False, False])
            rows = list(partition.ordered_batch().rows())
            assert rows == sorted(rows)


class TestSpillingEndToEnd:
    @pytest.fixture
    def db(self):
        database = Database()
        database.create_table("t", {"g": "int64", "x": "float64", "o": "int64"})
        rng = np.random.default_rng(1)
        n = 3000
        database.insert(
            "t",
            {
                "g": rng.integers(0, 6, n),
                "x": rng.random(n).round(4),
                "o": rng.permutation(n),
            },
        )
        return database

    QUERIES = [
        "SELECT g, median(x), sum(x) FROM t GROUP BY g",
        "SELECT g, percentile_disc(0.25) WITHIN GROUP (ORDER BY x), "
        "percentile_disc(0.75) WITHIN GROUP (ORDER BY o) FROM t GROUP BY g",
        "SELECT g, mad(x) FROM t GROUP BY g",
        "SELECT g, x, sum(x) OVER (PARTITION BY g ORDER BY o) AS c FROM t",
        "SELECT g, x FROM t ORDER BY x LIMIT 10",
    ]

    @pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
    def test_results_identical_under_memory_pressure(self, db, sql, tmp_path):
        unconstrained = normalized_rows(db.sql(sql))
        config = EngineConfig(
            num_threads=2,
            num_partitions=8,
            memory_budget_bytes=4096,  # far below the working set
            spill_directory=str(tmp_path),
        )
        constrained = normalized_rows(db.sql(sql, config=config))
        assert constrained == unconstrained

    def test_spill_actually_happens(self, db, tmp_path):
        config = EngineConfig(
            num_threads=2,
            num_partitions=8,
            memory_budget_bytes=1024,
            spill_directory=str(tmp_path),
            collect_trace=True,
        )
        result = db.sql("SELECT g, median(x) FROM t GROUP BY g", config=config)
        assert "spill" in [r.operator for r in result.trace.records]

    def test_no_budget_means_no_spill(self, db):
        config = EngineConfig(num_threads=2, collect_trace=True)
        result = db.sql("SELECT g, median(x) FROM t GROUP BY g", config=config)
        assert "spill" not in [r.operator for r in result.trace.records]

    def test_spill_files_cleaned_up(self, db, tmp_path):
        config = EngineConfig(
            memory_budget_bytes=1024, spill_directory=str(tmp_path)
        )
        db.sql("SELECT g, median(x) FROM t GROUP BY g", config=config)
        # All per-partition files were released after loading.
        assert os.listdir(str(tmp_path)) == []


class TestConcurrentSpilling:
    """Several queries spilling at once into one configured spill root
    (each query's SpillManager isolates itself in a private subdirectory,
    so concurrent part files never collide)."""

    QUERIES = TestSpillingEndToEnd.QUERIES

    @pytest.fixture
    def db(self):
        database = Database(num_threads=2)
        database.create_table("t", {"g": "int64", "x": "float64", "o": "int64"})
        rng = np.random.default_rng(5)
        n = 4000
        database.insert(
            "t",
            {
                "g": rng.integers(0, 6, n),
                "x": rng.random(n).round(4),
                "o": rng.permutation(n),
            },
        )
        return database

    def test_managers_sharing_a_root_do_not_collide(self, tmp_path):
        from repro.storage.spill import SpillManager

        a = SpillManager(str(tmp_path))
        b = SpillManager(str(tmp_path))
        path_a = a.write_batch(make_batch(20, seed=1))
        path_b = b.write_batch(make_batch(20, seed=2))
        assert path_a != path_b  # both are "part-000001.npz" by counter
        assert a.read_batch(path_a, SCHEMA).to_pydict() != b.read_batch(
            path_b, SCHEMA
        ).to_pydict()
        a.cleanup()
        # b's file survives a's cleanup.
        assert os.path.exists(path_b)
        b.cleanup()
        assert os.listdir(str(tmp_path)) == []

    def test_concurrent_queries_spill_correctly(self, db, tmp_path):
        from repro import QueryService, ServiceConfig

        expected = {sql: normalized_rows(db.sql(sql)) for sql in self.QUERIES}
        config = EngineConfig(
            num_threads=2,
            num_partitions=8,
            memory_budget_bytes=4096,
            spill_directory=str(tmp_path),
        )
        service = QueryService(db, ServiceConfig(max_concurrent=3))
        try:
            tickets = [
                service.submit(sql, config=config, use_result_cache=False)
                for sql in self.QUERIES * 2
            ]
            # max_concurrent=3 over 10 submissions: queries overlap.
            for ticket, sql in zip(tickets, self.QUERIES * 2):
                result = ticket.result(timeout=120)
                assert normalized_rows(result) == expected[sql], sql
        finally:
            service.shutdown()
        # Every query cleaned up its private spill subdirectory.
        assert os.listdir(str(tmp_path)) == []

    def test_concurrent_spilling_actually_spills(self, db, tmp_path):
        from repro import QueryService, ServiceConfig

        config = EngineConfig(
            num_threads=2,
            num_partitions=8,
            memory_budget_bytes=1024,
            spill_directory=str(tmp_path),
            collect_trace=True,
        )
        service = QueryService(db, ServiceConfig(max_concurrent=2))
        try:
            tickets = [
                service.submit(
                    "SELECT g, median(x) FROM t GROUP BY g",
                    config=config,
                    use_result_cache=False,
                )
                for _ in range(2)
            ]
            results = [t.result(timeout=120) for t in tickets]
        finally:
            service.shutdown()
        for result in results:
            assert "spill" in [r.operator for r in result.trace.records]
        assert os.listdir(str(tmp_path)) == []
