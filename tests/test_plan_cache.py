"""Tests for SQL normalization, the plan/result caches, and DAG-template
reuse (the parse/bind/translate-skipping fast path)."""

from __future__ import annotations

import pytest

import numpy as np

import repro.api
import repro.lolepop.engine
from repro import Database
from repro.server.cache import (
    PlanCache,
    PreparedPlan,
    ResultCache,
    _LruCache,
    normalize_sql,
)


def make_db(rows=400, plan_cache_size=256):
    db = Database(num_threads=2, plan_cache_size=plan_cache_size)
    db.create_table("t", {"g": "int64", "x": "float64"})
    rng = np.random.default_rng(3)
    db.insert(
        "t", {"g": rng.integers(0, 5, rows), "x": rng.random(rows).round(4)}
    )
    return db


# ---------------------------------------------------------------------------
# normalize_sql
# ---------------------------------------------------------------------------
class TestNormalizeSql:
    def test_whitespace_collapses(self):
        assert (
            normalize_sql("SELECT   x\n\tFROM  t")
            == normalize_sql("select x from t")
        )

    def test_case_folds_outside_strings(self):
        assert normalize_sql("SELECT X FROM T") == "select x from t"

    def test_string_literals_keep_case(self):
        a = normalize_sql("SELECT 'Case Matters' FROM t")
        b = normalize_sql("select 'case matters' from t")
        assert a != b
        assert "'Case Matters'" in a

    def test_quoted_identifier_preserved(self):
        assert '"MiXeD"' in normalize_sql('SELECT "MiXeD" FROM t')

    def test_escaped_quote_inside_literal(self):
        normalized = normalize_sql("SELECT 'it''s FINE' FROM t")
        assert "'it''s FINE'" in normalized
        assert normalized.endswith("from t")

    def test_whitespace_inside_literal_preserved(self):
        assert "'a  b'" in normalize_sql("SELECT  'a  b'  FROM t")

    def test_leading_trailing_space_ignored(self):
        assert normalize_sql("  SELECT 1 ") == "select 1"


# ---------------------------------------------------------------------------
# LRU machinery
# ---------------------------------------------------------------------------
class TestLru:
    def test_capacity_bound_and_eviction_order(self):
        cache = _LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_hit_rate(self):
        cache = _LruCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("nope")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        stats = cache.stats()
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            _LruCache(0)

    def test_result_cache_row_bound(self):
        class FakeResult:
            def __init__(self, n):
                self.n = n

            def __len__(self):
                return self.n

        cache = ResultCache(4, max_rows=10)
        key = ResultCache.key("SELECT 1", 0, "lolepop")
        assert cache.admit(key, FakeResult(11)) is False
        assert cache.get(key) is None
        assert cache.admit(key, FakeResult(10)) is True
        assert cache.get(key).n == 10


# ---------------------------------------------------------------------------
# Plan cache behaviour on the Database facade
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_hit_skips_parse_and_bind(self, monkeypatch):
        db = make_db()
        calls = {"parse": 0, "bind": 0}
        real_parse = repro.api.parse_sql
        real_bind = repro.api.bind

        def counting_parse(text):
            calls["parse"] += 1
            return real_parse(text)

        def counting_bind(stmt, catalog):
            calls["bind"] += 1
            return real_bind(stmt, catalog)

        monkeypatch.setattr(repro.api, "parse_sql", counting_parse)
        monkeypatch.setattr(repro.api, "bind", counting_bind)

        sql = "SELECT g, median(x) FROM t GROUP BY g"
        first = db.sql(sql).rows()
        assert calls == {"parse": 1, "bind": 1}
        # Hit: different whitespace/case, same normalized statement.
        second = db.sql("select  g,  median(x) from t group by g").rows()
        assert calls == {"parse": 1, "bind": 1}
        assert second == first

    def test_hit_skips_translate(self, monkeypatch):
        db = make_db()
        calls = {"translate": 0}
        real_translate = repro.lolepop.engine.translate_statistics

        def counting_translate(*args, **kwargs):
            calls["translate"] += 1
            return real_translate(*args, **kwargs)

        monkeypatch.setattr(
            repro.lolepop.engine, "translate_statistics", counting_translate
        )
        sql = "SELECT g, median(x) FROM t GROUP BY g"
        first = db.sql(sql).rows()
        translated_once = calls["translate"]
        assert translated_once >= 1
        assert db.sql(sql).rows() == first
        # Second run cloned the cached DAG templates instead.
        assert calls["translate"] == translated_once

    def test_dag_reuse_counted_in_profile(self):
        db = make_db()
        sql = "SELECT g, median(x) FROM t GROUP BY g"
        db.sql(sql)
        profiled = db.sql(
            sql, config=db.config.clone(collect_metrics=True)
        )
        assert profiled.profile.counters.get("plan_cache.dag_reuse", 0) >= 1

    def test_dml_invalidates(self, monkeypatch):
        db = make_db(rows=10)
        calls = {"parse": 0}
        real_parse = repro.api.parse_sql

        def counting_parse(text):
            calls["parse"] += 1
            return real_parse(text)

        monkeypatch.setattr(repro.api, "parse_sql", counting_parse)
        sql = "SELECT count(*) FROM t"
        assert db.sql(sql).rows() == [(10,)]
        db.insert("t", {"g": [9], "x": [1.0]})
        # Catalog version moved: the old entry no longer matches.
        assert db.sql(sql).rows() == [(11,)]
        assert calls["parse"] == 2

    def test_ddl_invalidates(self):
        db = make_db(rows=10)
        sql = "SELECT count(*) FROM t"
        db.sql(sql)
        misses_before = db.plan_cache.misses
        db.create_table("extra", {"a": "int64"})
        db.sql(sql)
        assert db.plan_cache.misses == misses_before + 1

    def test_explain_not_cached(self):
        db = make_db(rows=10)
        db.sql("EXPLAIN SELECT g FROM t")
        db.sql("EXPLAIN ANALYZE SELECT count(*) FROM t")
        assert len(db.plan_cache) == 0

    def test_disabled_cache(self, monkeypatch):
        db = make_db(plan_cache_size=0)
        assert db.plan_cache is None
        calls = {"parse": 0}
        real_parse = repro.api.parse_sql

        def counting_parse(text):
            calls["parse"] += 1
            return real_parse(text)

        monkeypatch.setattr(repro.api, "parse_sql", counting_parse)
        sql = "SELECT count(*) FROM t"
        db.sql(sql)
        db.sql(sql)
        assert calls["parse"] == 2

    def test_config_fingerprint_separates_templates(self):
        db = make_db()
        sql = "SELECT g, median(x) FROM t GROUP BY g"
        base = db.sql(sql).rows()
        other = db.sql(
            sql, config=db.config.clone(num_partitions=4, elide_sorts=False)
        ).rows()
        # Partitioning changes legal output order, not content.
        assert sorted(other) == sorted(base)
        entry = db.prepare(sql)
        fingerprints = {key[0] for key in entry.dag_templates}
        assert len(fingerprints) == 2

    def test_prepare_returns_cached_entry(self):
        db = make_db(rows=20)
        sql = "SELECT g, sum(x) FROM t GROUP BY g"
        first = db.prepare(sql)
        second = db.prepare(sql)
        assert second is first
        assert isinstance(first, PreparedPlan)

    def test_only_selects_cached(self):
        db = make_db(rows=20)
        db.create_table_as("copy_t", "SELECT g, x FROM t")
        assert db.table("copy_t").num_rows == 20
        # Everything in the cache is a reusable SELECT. (Keys are plain
        # normalized-SQL strings; staleness is tracked per entry via
        # table-version dependencies, not in the key.)
        for normalized in list(db.plan_cache._entries):
            assert normalized.startswith("select")


# ---------------------------------------------------------------------------
# DAG template cloning
# ---------------------------------------------------------------------------
class TestDagClone:
    def _template(self):
        db = make_db()
        sql = "SELECT g, median(x), sum(x) FROM t GROUP BY g"
        db.sql(sql)
        entry = db.prepare(sql)
        assert entry.dag_templates
        return next(iter(entry.dag_templates.values()))

    def test_clone_is_deep_over_nodes(self):
        template = self._template()
        clone = template.clone()
        originals = {id(node) for node in template.topological_order()}
        for node in clone.topological_order():
            assert id(node) not in originals

    def test_clone_preserves_structure(self):
        template = self._template()
        clone = template.clone()
        original_nodes = template.topological_order()
        cloned_nodes = clone.topological_order()
        assert [type(n) for n in cloned_nodes] == [
            type(n) for n in original_nodes
        ]
        index_of = {id(n): i for i, n in enumerate(original_nodes)}
        for original, twin in zip(original_nodes, cloned_nodes):
            assert [index_of[id(i)] for i in original.inputs] == [
                cloned_nodes.index(i) for i in twin.inputs
            ]
            assert [index_of[id(a)] for a in original.after] == [
                cloned_nodes.index(a) for a in twin.after
            ]

    def test_clone_resets_stats(self):
        template = self._template()
        clone = template.clone()
        assert all(n.stats is None for n in clone.topological_order())

    def test_templates_never_executed(self):
        # Executing a query twice must leave the cached template pristine
        # (stats are attached per run to clones, not to the template).
        db = make_db()
        sql = "SELECT g, median(x) FROM t GROUP BY g"
        db.sql(sql)
        db.sql(sql, config=db.config.clone(collect_metrics=True))
        entry = db.prepare(sql)
        for template in entry.dag_templates.values():
            assert all(n.stats is None for n in template.topological_order())


# ---------------------------------------------------------------------------
# PlanCache.lookup
# ---------------------------------------------------------------------------
class TestPlanCacheLookup:
    class _FakeCatalog:
        def __init__(self, version=7):
            self.version = version

    def test_miss_then_hit(self):
        cache = PlanCache(8)
        catalog = self._FakeCatalog()
        built = []

        def build():
            entry = PreparedPlan("SELECT 1", None, None, catalog.version)
            built.append(entry)
            return entry

        first, hit1 = cache.lookup("SELECT 1", catalog, build)
        second, hit2 = cache.lookup("select  1", catalog, build)
        assert (hit1, hit2) == (False, True)
        assert second is first
        assert len(built) == 1

    def test_version_change_misses(self):
        cache = PlanCache(8)
        catalog = self._FakeCatalog(version=1)
        build = lambda: PreparedPlan("SELECT 1", None, None, catalog.version)
        cache.lookup("SELECT 1", catalog, build)
        catalog.version = 2
        _, hit = cache.lookup("SELECT 1", catalog, build)
        assert hit is False

    def test_uncacheable_not_stored(self):
        cache = PlanCache(8)
        catalog = self._FakeCatalog()
        build = lambda: PreparedPlan(
            "EXPLAIN SELECT 1", None, None, catalog.version, cacheable=False
        )
        cache.lookup("EXPLAIN SELECT 1", catalog, build)
        _, hit = cache.lookup("EXPLAIN SELECT 1", catalog, build)
        assert hit is False
        assert len(cache) == 0
