"""Tests for the planner API and Low-Level-Functions (paper §3.4)."""

import numpy as np
import pytest

from repro import Database
from repro.compgraph import (
    AggregatePlanner,
    computation_graph,
    functions as F,
    render_computation_graph,
)
from repro.errors import BindError
from repro.lolepop import LolepopEngine


@pytest.fixture
def db():
    database = Database(num_threads=2)
    database.create_table("t", {"g": "int64", "x": "float64", "o": "int64"})
    rng = np.random.default_rng(4)
    n = 300
    database.insert(
        "t",
        {
            "g": rng.integers(0, 4, n),
            "x": rng.random(n).round(4),
            "o": rng.permutation(n),
        },
    )
    return database


def run(db, plan):
    return LolepopEngine(db.catalog, db.config).run(plan)


def group_values(db):
    out = {}
    gs = db.table("t").column("g").values
    xs = db.table("t").column("x").values
    os_ = db.table("t").column("o").values
    for g in np.unique(gs):
        mask = gs == g
        order = np.argsort(os_[mask], kind="stable")
        out[int(g)] = xs[mask][order]
    return out


class TestPlannerBasics:
    def test_simple_aggregate(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        plan = p.finish({"g": p.key("g"), "s": p.aggregate("sum", p.value("x"))})
        rows = dict(run(db, plan).rows())
        values = group_values(db)
        for g, expected in values.items():
            assert rows[g] == pytest.approx(expected.sum())

    def test_interning_shares_aggregates(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        x = p.value("x")
        F.avg(p, x)
        F.var_pop(p, x)
        # avg: sum+count; var adds only sum(x*x): 3 total.
        assert len(p.aggregates) == 3

    def test_unknown_column_rejected(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        with pytest.raises(Exception):
            p.value("zz")

    def test_key_must_be_group_key(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        with pytest.raises(BindError):
            p.key("x")

    def test_node_arithmetic(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        s = p.aggregate("sum", p.value("x"))
        c = p.aggregate("count", p.value("x"))
        plan = p.finish({"g": p.key("g"), "m": (s / c) * 2 - 1})
        result = run(db, plan)
        assert result.schema.names() == ["g", "m"]


class TestLowLevelFunctions:
    def numpy_groups(self, db):
        return group_values(db)

    def test_var_and_stddev(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        plan = p.finish({
            "g": p.key("g"),
            "vp": F.var_pop(p, "x"),
            "vs": F.var_samp(p, "x"),
            "sd": F.stddev_pop(p, "x"),
        })
        rows = {r[0]: r[1:] for r in run(db, plan).rows()}
        for g, values in self.numpy_groups(db).items():
            assert rows[g][0] == pytest.approx(values.var())
            assert rows[g][1] == pytest.approx(values.var(ddof=1))
            assert rows[g][2] == pytest.approx(values.std())

    def test_median_and_iqr(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        plan = p.finish({
            "g": p.key("g"),
            "med": F.median(p, "x"),
            "iqr": F.iqr(p, "x"),
        })
        rows = {r[0]: r[1:] for r in run(db, plan).rows()}
        for g, values in self.numpy_groups(db).items():
            assert rows[g][0] == pytest.approx(np.median(values))
            assert rows[g][1] == pytest.approx(
                np.percentile(values, 75) - np.percentile(values, 25)
            )

    def test_mad(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        plan = p.finish({"g": p.key("g"), "mad": F.mad(p, "x")})
        rows = dict(run(db, plan).rows())
        for g, values in self.numpy_groups(db).items():
            expected = np.median(np.abs(values - np.median(values)))
            assert rows[g] == pytest.approx(expected)

    def test_mssd_matches_definition(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        plan = p.finish({
            "g": p.key("g"),
            "mssd": F.mssd(p, p.value("x"), p.value("o")),
        })
        rows = dict(run(db, plan).rows())
        for g, ordered in self.numpy_groups(db).items():
            diffs = np.diff(ordered)
            expected = np.sqrt((diffs**2).sum() / len(diffs))
            assert rows[g] == pytest.approx(expected)

    def test_moments_kurtosis_skewness(self, db):
        p = AggregatePlanner(db.plan("SELECT * FROM t"), group_by=["g"])
        plan = p.finish({
            "g": p.key("g"),
            "kurt": F.kurtosis(p, "x"),
            "skew": F.skewness(p, "x"),
        })
        rows = {r[0]: r[1:] for r in run(db, plan).rows()}
        for g, values in self.numpy_groups(db).items():
            centered = values - values.mean()
            m2 = (centered**2).mean()
            assert rows[g][0] == pytest.approx((centered**4).mean() / m2**2 - 3)
            assert rows[g][1] == pytest.approx(
                (centered**3).mean() / m2**1.5
            )


class TestComputationGraph:
    def test_graph_shows_sharing(self, db):
        plan = db.plan("SELECT g, avg(x), var_pop(x) FROM t GROUP BY g")
        nodes = computation_graph(plan)
        aggregates = [n for n in nodes if n.kind == "aggregate"]
        assert len(aggregates) == 3  # sum, count, sum of squares

    def test_graph_includes_windows(self, db):
        plan = db.plan("SELECT g, mad(x) FROM t GROUP BY g")
        kinds = {n.kind for n in computation_graph(plan)}
        assert "window" in kinds and "aggregate" in kinds

    def test_render(self, db):
        text = render_computation_graph(db.plan("SELECT g, mad(x) FROM t GROUP BY g"))
        assert "window" in text and "aggregate" in text

    def test_render_non_aggregate(self, db):
        assert "no aggregation region" in render_computation_graph(
            db.plan("SELECT g FROM t")
        )
