"""Unit + property tests for multi-column key encoding (repro.storage.keys)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Column, keys
from repro.types import DataType


def int_col(values):
    return Column.from_values(DataType.INT64, values)


def str_col(values):
    return Column.from_values(DataType.STRING, values)


class TestGroupCodes:
    def test_single_column(self):
        codes, reps, n = keys.group_codes([int_col([5, 7, 5, 9])])
        assert n == 3
        assert codes[0] == codes[2]
        assert len(set(codes.tolist())) == 3
        # Representatives point at rows whose value defines the group.
        values = [5, 7, 5, 9]
        groups = {values[r] for r in reps}
        assert groups == {5, 7, 9}

    def test_null_equals_null(self):
        codes, _, n = keys.group_codes([int_col([1, None, None, 1])])
        assert n == 2
        assert codes[1] == codes[2]
        assert codes[0] == codes[3]

    def test_null_distinct_from_zero(self):
        codes, _, n = keys.group_codes([int_col([0, None])])
        assert n == 2

    def test_multi_column(self):
        codes, _, n = keys.group_codes(
            [int_col([1, 1, 2, 2]), str_col(["a", "b", "a", "a"])]
        )
        assert n == 3
        assert codes[2] == codes[3]

    def test_empty_input(self):
        codes, reps, n = keys.group_codes([int_col([])])
        assert n == 0 and len(codes) == 0

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            keys.group_codes([])

    def test_float_negative_zero(self):
        col = Column.from_values(DataType.FLOAT64, [0.0, -0.0])
        _, _, n = keys.group_codes([col])
        assert n == 1


class TestHashing:
    def test_deterministic(self):
        col = str_col(["x", "y", "x"])
        h1 = keys.hash_codes([col])
        h2 = keys.hash_codes([str_col(["x", "y", "x"])])
        assert np.array_equal(h1, h2)

    def test_stable_across_batches(self):
        """The regression behind the two-phase merge bug: equal string keys
        must hash identically regardless of which other values share the
        batch."""
        a = keys.hash_codes([str_col(["HIGH", "LOW"])])
        b = keys.hash_codes([str_col(["LOW", "MED", "HIGH"])])
        assert a[0] == b[2]
        assert a[1] == b[0]

    def test_partition_ids_in_range(self):
        ids = keys.partition_ids([int_col(list(range(100)))], 8)
        assert ids.min() >= 0 and ids.max() < 8

    def test_equal_keys_same_partition(self):
        ids = keys.partition_ids([int_col([3, 3, 3])], 16)
        assert len(set(ids.tolist())) == 1


class TestLexsort:
    def test_multi_key(self):
        order = keys.lexsort_indices(
            [int_col([1, 1, 0]), int_col([5, 3, 9])]
        )
        assert list(order) == [2, 1, 0]

    def test_descending_key(self):
        order = keys.lexsort_indices([int_col([1, 3, 2])], [True])
        assert list(order) == [1, 2, 0]

    def test_nulls_last_both_directions(self):
        col = int_col([2, None, 1])
        assert list(keys.lexsort_indices([col], [False])) == [2, 0, 1]
        assert list(keys.lexsort_indices([col], [True])) == [0, 2, 1]

    def test_stability(self):
        order = keys.lexsort_indices([int_col([1, 1, 1])])
        assert list(order) == [0, 1, 2]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(st.integers(-50, 50), st.none()), min_size=1, max_size=60
    )
)
def test_group_codes_match_python_grouping(values):
    """Property: dense codes partition rows exactly like a Python dict."""
    codes, _, n = keys.group_codes([int_col(values)])
    by_code = {}
    for value, code in zip(values, codes.tolist()):
        by_code.setdefault(code, set()).add(value)
    # every code maps to exactly one distinct value
    assert all(len(s) == 1 for s in by_code.values())
    assert len(by_code) == n == len(set(values))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=80),
    st.integers(2, 16),
)
def test_partitioning_is_value_deterministic(values, parts):
    """Property: the partition of a row depends only on its key value."""
    ids = keys.partition_ids([int_col(values)], parts)
    seen = {}
    for value, pid in zip(values, ids.tolist()):
        assert seen.setdefault(value, pid) == pid
