"""Tests for the FILTER (WHERE ...) clause and the mode() aggregate."""

import numpy as np
import pytest

from repro import Database
from repro.errors import BindError

from tests.helpers import assert_engines_agree


@pytest.fixture
def db():
    database = Database(num_threads=2)
    database.create_table("t", {"g": "int64", "x": "int64", "s": "string"})
    database.insert(
        "t",
        {
            "g": [1, 1, 1, 1, 2, 2, 2],
            "x": [1, 1, 2, 9, 5, 5, None],
            "s": ["a", "a", "b", "b", "c", "c", "c"],
        },
    )
    return database


class TestFilterClause:
    def test_count_star_filter(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, count(*) FILTER (WHERE x > 1) AS c FROM t GROUP BY g"
            ).rows()
        )
        assert rows == [(1, 2), (2, 2)]

    def test_sum_filter(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, sum(x) FILTER (WHERE s = 'b') AS s1, sum(x) AS s2 "
                "FROM t GROUP BY g"
            ).rows()
        )
        assert rows == [(1, 11, 13), (2, None, 10)]

    def test_filter_with_distinct(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, count(DISTINCT x) FILTER (WHERE x < 9) AS c "
                "FROM t GROUP BY g"
            ).rows()
        )
        assert rows == [(1, 2), (2, 1)]

    def test_filter_on_percentile(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, percentile_disc(0.5) WITHIN GROUP (ORDER BY x) "
                "FILTER (WHERE x < 9) AS p FROM t GROUP BY g"
            ).rows()
        )
        assert rows == [(1, 1), (2, 5)]

    def test_filter_on_avg_decomposes(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, avg(x) FILTER (WHERE x <= 2) AS a FROM t GROUP BY g"
            ).rows()
        )
        assert rows[0] == (1, pytest.approx(4 / 3))

    def test_engines_agree(self, db):
        assert_engines_agree(
            db,
            "SELECT g, count(*) FILTER (WHERE s <> 'a') AS c, "
            "max(x) FILTER (WHERE x < 9) AS m FROM t GROUP BY g",
        )


class TestMode:
    def test_basic_mode(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, mode() WITHIN GROUP (ORDER BY x) AS m FROM t GROUP BY g"
            ).rows()
        )
        assert rows == [(1, 1), (2, 5)]

    def test_mode_tie_takes_first_in_order(self, db):
        # g=1 strings: a,a,b,b — tie; ascending order picks 'a'.
        rows = sorted(
            db.sql(
                "SELECT g, mode() WITHIN GROUP (ORDER BY s) AS m FROM t GROUP BY g"
            ).rows()
        )
        assert rows == [(1, "a"), (2, "c")]

    def test_mode_tie_descending(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, mode() WITHIN GROUP (ORDER BY s DESC) AS m "
                "FROM t GROUP BY g"
            ).rows()
        )
        assert rows == [(1, "b"), (2, "c")]

    def test_mode_requires_within_group(self, db):
        with pytest.raises(BindError):
            db.plan("SELECT mode() FROM t GROUP BY g")

    def test_mode_plan_uses_ordagg(self, db):
        text = db.explain_lolepop(
            "SELECT g, mode() WITHIN GROUP (ORDER BY x) FROM t GROUP BY g"
        )
        assert "ORDAGG" in text and "mode" in text

    def test_mode_with_plain_aggregates(self, db):
        assert_engines_agree(
            db,
            "SELECT g, mode() WITHIN GROUP (ORDER BY x) AS m, sum(x), count(*) "
            "FROM t GROUP BY g",
        )

    def test_mode_all_null_group(self, db):
        db.insert("t", {"g": [3], "x": [None], "s": ["z"]})
        rows = dict(
            db.sql(
                "SELECT g, mode() WITHIN GROUP (ORDER BY x) AS m FROM t GROUP BY g"
            ).rows()
        )
        assert rows[3] is None

    def test_mode_engines_agree_random(self):
        rng = np.random.default_rng(8)
        database = Database(num_threads=2)
        database.create_table("r", {"g": "int64", "v": "int64"})
        database.insert(
            "r",
            {
                "g": [int(x) for x in rng.integers(0, 4, 200)],
                "v": [int(x) for x in rng.integers(0, 6, 200)],
            },
        )
        assert_engines_agree(
            database,
            "SELECT g, mode() WITHIN GROUP (ORDER BY v) AS m FROM r GROUP BY g",
        )
