"""Tests for optimizer provenance (structured rewrite events + cost
deltas), the per-operator resource ledger, service wait-span export, the
persistent cardinality-feedback store, and the closed Q-error loop."""

from __future__ import annotations

import ast
import copy
import importlib.util
import json
import os
import pickle

import numpy as np
import pytest

from repro import Database
from repro.execution.context import EngineConfig
from repro.execution.trace import ExecutionTrace, TraceRecord
from repro.observability.chrome import (
    REGION_PID,
    SERVICE_PID,
    chrome_trace_events,
    validate_trace_events,
)
from repro.observability.analyze import morsel_skew
from repro.observability.feedback import (
    FeedbackStore,
    plan_signature,
    root_observation,
)
from repro.observability.provenance import (
    RewriteEvent,
    rewrite_events_to_dicts,
)
from repro.observability.telemetry import Telemetry, TelemetryConfig


def fresh_telemetry(**overrides) -> Telemetry:
    overrides.setdefault("enabled", True)
    overrides.setdefault("slow_query_threshold_s", 0.0)
    return Telemetry(TelemetryConfig(**overrides))


def correlated_db(feedback_dir, rows=4000, keys=40, telemetry=None):
    """A table where ``GROUP BY a, b`` defeats the independence assumption:
    ``b`` is a function of ``a``, so the statistics-based group estimate
    (``d(a) * d(b)`` capped by rows) overshoots the true group count by
    ~``keys``x. Only observed actuals can fix the estimate."""
    db = Database(
        num_threads=2,
        telemetry=telemetry or fresh_telemetry(),
        feedback_dir=str(feedback_dir),
    )
    db.create_table("c", {"a": "int64", "b": "int64", "v": "float64"})
    a = np.arange(rows) % keys
    db.insert("c", {"a": a, "b": a * 2, "v": np.ones(rows)})
    return db


DRIFT_SQL = "SELECT a, b, sum(v) FROM c GROUP BY a, b"


# ---------------------------------------------------------------------------
# RewriteEvent: string compatibility + structured payload
# ---------------------------------------------------------------------------
class TestRewriteEvent:
    def make(self):
        return RewriteEvent(
            "elide_redundant_sorts x2",
            pass_name="elide_sorts",
            detail="x2",
            nodes=("#3 SORT [k ASC]", "#7 SORT [k ASC]"),
            cost_before=900.0,
            cost_after=400.0,
        )

    def test_is_a_string(self):
        event = self.make()
        assert isinstance(event, str)
        assert event == "elide_redundant_sorts x2"
        assert event.startswith("elide_redundant_sorts")
        assert "; ".join([event]) == "elide_redundant_sorts x2"

    def test_structured_fields(self):
        event = self.make()
        assert event.pass_name == "elide_sorts"
        assert event.nodes == ("#3 SORT [k ASC]", "#7 SORT [k ASC]")
        assert event.cost_delta == pytest.approx(-500.0)
        assert "-500" in event.render_cost()

    def test_to_dict_round_trip(self):
        doc = self.make().to_dict()
        assert doc["text"] == "elide_redundant_sorts x2"
        assert doc["pass"] == "elide_sorts"
        assert doc["cost_delta"] == pytest.approx(-500.0)
        json.dumps(doc)  # JSON-safe

    def test_copy_and_pickle_survive(self):
        event = self.make()
        assert copy.copy(event) is event
        assert copy.deepcopy(event) is event
        restored = pickle.loads(pickle.dumps(event))
        assert restored == event
        assert restored.pass_name == "elide_sorts"
        assert restored.cost_delta == pytest.approx(-500.0)

    def test_plain_strings_degrade_in_event_dicts(self):
        docs = rewrite_events_to_dicts(["buffer-reuse SORT->MERGE"])
        assert docs[0]["text"] == "buffer-reuse SORT->MERGE"
        assert "cost_delta" not in docs[0] or docs[0]["cost_delta"] is None


# ---------------------------------------------------------------------------
# Provenance end to end: optimizer -> profile -> EXPLAIN ANALYZE
# ---------------------------------------------------------------------------
class TestProvenanceEndToEnd:
    @pytest.fixture()
    def db(self):
        db = Database(num_threads=2, telemetry=fresh_telemetry())
        db.create_table("t", {"g": "int64", "x": "float64"})
        rng = np.random.default_rng(7)
        db.insert(
            "t",
            {"g": rng.integers(0, 5, 2000), "x": rng.random(2000)},
        )
        return db

    # Two aggregations over the same grouping produce a redundant-combine
    # (and sort-elision) opportunity, so rewrites fire deterministically.
    SQL = "SELECT g, sum(x), count(*) FROM t GROUP BY g ORDER BY g"

    def test_dag_rewrites_are_events_with_costs(self, db):
        result = db.sql(
            self.SQL, config=EngineConfig(collect_metrics=True)
        )
        events = [
            entry
            for entry in result.profile.rewrites
            if isinstance(entry, RewriteEvent)
        ]
        assert events, "optimizer recorded no structured rewrite events"
        costed = [e for e in events if e.cost_delta is not None]
        assert costed, "no rewrite carried an estimated cost delta"
        assert all(e.cost_delta <= 0.0 for e in costed)

    def test_profile_dict_exposes_rewrite_events(self, db):
        result = db.sql(
            self.SQL, config=EngineConfig(collect_metrics=True)
        )
        doc = result.profile.to_dict()
        assert all(isinstance(text, str) for text in doc["rewrites"])
        assert doc["rewrite_events"], "rewrite_events missing from profile"
        event = doc["rewrite_events"][0]
        assert set(event) >= {"text", "pass"}
        json.dumps(doc["rewrite_events"])

    def test_explain_analyze_renders_cost_deltas(self, db):
        text = db.explain_analyze(self.SQL)
        assert "rewrites:" in text
        assert "Δcost" in text
        assert "->" in text

    def test_ledger_fields_populated(self, db):
        result = db.sql(
            self.SQL, config=EngineConfig(collect_metrics=True)
        )
        stats = [entry[4] for entry in result.profile.operator_stats()]
        assert any(op.bytes_materialized > 0 for op in stats)
        doc = result.profile.to_dict()
        op_doc = doc["dags"][0]["operators"][0]
        assert "bytes_materialized" in op_doc
        assert "peak_partition_bytes" in op_doc


# ---------------------------------------------------------------------------
# Morsel skew + Chrome wait spans
# ---------------------------------------------------------------------------
def skewed_trace() -> ExecutionTrace:
    trace = ExecutionTrace()
    # Thread 1 is the straggler: 4x the mean morsel duration.
    for thread, start, end in ((0, 0.0, 0.1), (1, 0.0, 0.8), (2, 0.0, 0.1)):
        trace.records.append(
            TraceRecord(
                operator="HASHAGG", phase="p1",
                thread=thread, start=start, end=end,
            )
        )
    return trace


class TestMorselSkew:
    def test_skew_attribution(self):
        entries = morsel_skew(skewed_trace())
        assert entries
        top = entries[0]
        assert top["operator"] == "HASHAGG"
        assert top["straggler_thread"] == 1
        assert top["max_s"] == pytest.approx(0.8)
        assert top["skew"] > 2.0

    def test_empty_trace(self):
        assert morsel_skew(None) == []
        assert morsel_skew(ExecutionTrace()) == []


class TestChromeWaitSpans:
    def test_wait_spans_schema_and_placement(self):
        trace = skewed_trace()
        trace.queue_wait_s = 0.25
        trace.admission_reserve_s = 0.05
        events = chrome_trace_events(trace)
        validate_trace_events(events)  # full span schema holds
        service = [e for e in events if e["pid"] == SERVICE_PID]
        names = {e["name"] for e in service}
        assert names == {"service:queue-wait", "service:admission-reserve"}
        # Waits precede execution: spans tile [-0.30s, 0] in order.
        by_name = {e["name"]: e for e in service}
        queue = by_name["service:queue-wait"]
        reserve = by_name["service:admission-reserve"]
        assert queue["ts"] == pytest.approx(-0.30 * 1e6)
        assert queue["ts"] + queue["dur"] == pytest.approx(reserve["ts"])
        assert reserve["ts"] + reserve["dur"] == pytest.approx(0.0, abs=1e-6)

    def test_zero_waits_emit_no_service_spans(self):
        events = chrome_trace_events(skewed_trace())
        assert not [e for e in events if e["pid"] == SERVICE_PID]

    def test_region_spans_carry_skew_args(self):
        from repro.execution.trace import RegionSpan

        trace = skewed_trace()
        trace.add_region(
            RegionSpan(
                operator="HASHAGG", phase="p1", start=0.0, end=0.8, items=3
            )
        )
        events = chrome_trace_events(trace)
        region = [e for e in events if e["pid"] == REGION_PID]
        assert region and region[0]["args"]["straggler_thread"] == 1
        assert region[0]["args"]["morsel_skew"] > 2.0

    def test_config_waits_reach_trace(self):
        config = EngineConfig(
            collect_trace=True, queue_wait_s=0.4, admission_reserve_s=0.1
        )
        from repro.execution.context import ExecutionContext

        context = ExecutionContext(config)
        assert context.trace.queue_wait_s == pytest.approx(0.4)
        assert context.trace.admission_reserve_s == pytest.approx(0.1)
        # Never part of the translation fingerprint: ids and waits do not
        # change the plan.
        assert (
            config.translation_fingerprint()
            == EngineConfig().translation_fingerprint()
        )


# ---------------------------------------------------------------------------
# Feedback store: persistence, tolerance, bounds
# ---------------------------------------------------------------------------
class FakePlan:
    def label(self):
        return "SCAN fake"

    children = ()


def fake_observation(actual=100, est=10.0):
    return root_observation(FakePlan(), est, actual)


class TestFeedbackStore:
    def test_round_trip_across_restarts(self, tmp_path):
        store = FeedbackStore(str(tmp_path))
        store.observe("abc123", "select 1", [fake_observation(actual=300)])
        store.flush()
        reopened = FeedbackStore(str(tmp_path))
        assert reopened.fingerprints() == ["abc123"]
        doc = reopened.get("abc123")
        assert doc["operators"]
        only = next(iter(doc["operators"].values()))
        assert only["actual_rows"] == pytest.approx(300.0)
        assert only["signature"] == plan_signature(FakePlan())

    def test_actuals_smooth_with_ewma(self, tmp_path):
        store = FeedbackStore(str(tmp_path))
        store.observe("abc123", "select 1", [fake_observation(actual=100)])
        store.observe("abc123", "select 1", [fake_observation(actual=200)])
        doc = store.get("abc123")
        only = next(iter(doc["operators"].values()))
        # EWMA: 0.7 * 100 + 0.3 * 200
        assert only["actual_rows"] == pytest.approx(130.0)

    def test_corrupt_file_tolerated_with_warning(self, tmp_path):
        store = FeedbackStore(str(tmp_path))
        store.observe("abc123", "select 1", [fake_observation()])
        store.flush()
        (tmp_path / "fb_dead.json").write_text("{not json")
        (tmp_path / "fb_beef.json").write_text('{"schema": 999}')
        telemetry = fresh_telemetry()
        reopened = FeedbackStore(str(tmp_path), telemetry=telemetry)
        assert reopened.fingerprints() == ["abc123"]  # good file survives
        warnings = [
            e
            for e in telemetry.recorder.snapshot()
            if e["kind"] == "feedback.load_error"
        ]
        assert len(warnings) == 2

    def test_bounded_size_evicts_oldest(self, tmp_path):
        telemetry = fresh_telemetry()
        store = FeedbackStore(str(tmp_path), max_files=3, telemetry=telemetry)
        for index in range(5):
            store.observe(f"fp{index}", "select 1", [fake_observation()])
        store.flush()
        assert len(store) == 3
        files = sorted(p.name for p in tmp_path.glob("fb_*.json"))
        assert len(files) == 3
        assert "fb_fp0.json" not in files and "fb_fp1.json" not in files
        evictions = [
            e
            for e in telemetry.recorder.snapshot()
            if e["kind"] == "feedback.evict"
        ]
        assert evictions

    def test_calibration_lookup(self, tmp_path):
        store = FeedbackStore(str(tmp_path))
        store.observe("abc123", "select 1", [fake_observation(actual=250)])
        calibration = store.calibration()
        assert calibration.rows_for(FakePlan()) == pytest.approx(250.0)

        class OtherPlan:
            def label(self):
                return "SCAN other"

            children = ()

        assert calibration.rows_for(OtherPlan()) is None


# ---------------------------------------------------------------------------
# The closed loop: replay a drifting workload twice
# ---------------------------------------------------------------------------
class TestClosedLoop:
    def run_workload(self, db, repetitions=6):
        worst = 0.0
        for _ in range(repetitions):
            result = db.sql(DRIFT_SQL)
            assert len(result.batch) == 40
        for template in db.telemetry.workload.templates():
            worst = max(worst, template.q_max)
        return worst

    def test_second_run_has_strictly_lower_max_q_error(self, tmp_path):
        first = correlated_db(tmp_path / "fb")
        q_first = self.run_workload(first)
        # Independence assumption overshoots: d(a)*d(b) >> true groups.
        assert q_first > 2.0
        first.feedback.flush()

        second = correlated_db(tmp_path / "fb")
        q_second = self.run_workload(second)
        assert q_second < q_first
        assert q_second == pytest.approx(1.0, abs=0.5)

    def test_estimator_consults_calibration(self, tmp_path):
        first = correlated_db(tmp_path / "fb")
        self.run_workload(first)
        first.feedback.flush()
        second = correlated_db(tmp_path / "fb")
        estimate = second.estimate(DRIFT_SQL)
        assert estimate == pytest.approx(40.0, rel=0.5)

    def test_drift_triggers_replan_and_cache_discard(self, tmp_path):
        telemetry = fresh_telemetry()
        db = correlated_db(tmp_path / "fb", telemetry=telemetry)
        prepared = db.prepare(DRIFT_SQL)
        fingerprint = None

        db.sql(DRIFT_SQL)
        for record_fingerprint in (
            t.fingerprint for t in telemetry.workload.templates()
        ):
            fingerprint = record_fingerprint
        assert fingerprint is not None

        class DriftingTemplate:
            count = 20

            @staticmethod
            def drift_ratio():
                return 5.0

        real_get = telemetry.workload.get
        telemetry.workload.get = lambda fp: DriftingTemplate()
        try:
            db._maybe_replan(fingerprint, prepared)
        finally:
            telemetry.workload.get = real_get
        assert prepared.est_rows is None
        assert not prepared.dag_templates
        replans = [
            e
            for e in telemetry.recorder.snapshot()
            if e["kind"] == "feedback.replan"
        ]
        assert replans and replans[0]["drift_ratio"] == pytest.approx(5.0)
        # Throttled: a second drifting observation within REPLAN_INTERVAL
        # does not discard again.
        telemetry.workload.get = lambda fp: DriftingTemplate()
        try:
            db._maybe_replan(fingerprint, prepared)
        finally:
            telemetry.workload.get = real_get
        assert (
            len(
                [
                    e
                    for e in telemetry.recorder.snapshot()
                    if e["kind"] == "feedback.replan"
                ]
            )
            == 1
        )


# ---------------------------------------------------------------------------
# Disabled path stays allocation-free
# ---------------------------------------------------------------------------
class TestDisabledPath:
    def test_feedback_not_consulted_when_telemetry_disabled(
        self, tmp_path, monkeypatch
    ):
        telemetry = Telemetry(TelemetryConfig(enabled=False))
        db = correlated_db(tmp_path / "fb", telemetry=telemetry)
        observations = []
        monkeypatch.setattr(
            db.feedback,
            "observe",
            lambda *args, **kwargs: observations.append(1),
        )
        db.sql(DRIFT_SQL)
        assert observations == []
        telemetry.enable()
        db.sql(DRIFT_SQL)
        assert len(observations) == 1

    def test_no_store_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_FEEDBACK_DIR", raising=False)
        assert Database().feedback is None


# ---------------------------------------------------------------------------
# Tools: lint rule R5 and plan_diff
# ---------------------------------------------------------------------------
def _load_tool(name):
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tools",
        f"{name}.py",
    )
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLintR5:
    def findings_for(self, source):
        from pathlib import Path

        lint = _load_tool("lint_engine")
        findings = []
        lint.check_stringly_rewrites(
            Path("synthetic.py"), ast.parse(source), findings
        )
        return findings

    def test_flags_plain_string_appends(self):
        source = (
            "def f(dag, n):\n"
            "    dag.rewrites.append('literal')\n"
            "    dag.rewrites.append(f'elide x{n}')\n"
            "    dag.rewrites.append('a' + str(n))\n"
        )
        findings = self.findings_for(source)
        assert len(findings) == 3
        assert all(f.rule == "stringly-rewrite" for f in findings)

    def test_allows_record_rewrite_and_event_appends(self):
        source = (
            "def f(dag):\n"
            "    dag.record_rewrite('fine: builds a RewriteEvent')\n"
            "    dag.rewrites.append(make_event())\n"
            "    other.history.append('unrelated list of strings')\n"
        )
        assert self.findings_for(source) == []

    def test_src_tree_is_clean(self):
        from pathlib import Path

        lint = _load_tool("lint_engine")
        findings = [
            f
            for f in lint.lint(Path("src"))
            if f.rule == "stringly-rewrite"
        ]
        assert findings == []


class TestPlanDiff:
    def profile_doc(self, wall, with_sort=True):
        operators = [
            {
                "id": 1, "name": "SCAN", "describe": "t",
                "wall_time_s": wall, "rows_out": 1000,
                "spill_bytes_written": 0, "spill_bytes_read": 0,
                "bytes_materialized": 4096,
            }
        ]
        rewrites = []
        events = []
        if with_sort:
            operators.append(
                {
                    "id": 3, "name": "SORT", "describe": "k",
                    "wall_time_s": 0.2, "rows_out": 1000,
                    "spill_bytes_written": 0, "spill_bytes_read": 0,
                    "bytes_materialized": 8192,
                }
            )
        else:
            rewrites.append("elide_redundant_sorts x1")
            events.append(
                {
                    "text": "elide_redundant_sorts x1",
                    "pass": "elide_sorts",
                    "nodes": ["#3 SORT [k]"],
                    "cost_delta": -800.0,
                }
            )
        return {
            "query": "q", "serial_time_s": wall + (0.2 if with_sort else 0.0),
            "rewrites": rewrites, "rewrite_events": events,
            "dags": [{"index": 0, "operators": operators}],
        }

    def test_profile_diff_attributes_removed_operator(self):
        plan_diff = _load_tool("plan_diff")
        report = plan_diff.diff_profiles(
            self.profile_doc(0.1, with_sort=True),
            self.profile_doc(0.15, with_sort=False),
        )
        assert report["kind"] == "profile"
        removed = report["operators_removed"]
        assert len(removed) == 1
        assert removed[0]["attributed_to"] == "elide_redundant_sorts x1"
        assert report["rewrites_added"][0]["cost_delta"] == pytest.approx(
            -800.0
        )
        changed = report["operators_changed"]
        assert changed and changed[0]["wall_delta_s"] == pytest.approx(0.05)

    def test_snapshot_diff(self):
        plan_diff = _load_tool("plan_diff")
        base = {
            "pr": 8,
            "families": {
                "fam": {"queries": {"q1": {"wall_s": 0.10}}},
            },
            "server": {
                "throughput_qps": 100.0,
                "latency_ms": {"p50": 1.0, "p95": 2.0},
            },
        }
        fresh = json.loads(json.dumps(base))
        fresh["pr"] = 9
        fresh["families"]["fam"]["queries"]["q1"]["wall_s"] = 0.12
        fresh["server"]["throughput_qps"] = 90.0
        report = plan_diff.diff_snapshots(base, fresh)
        assert report["queries"][0]["wall_delta_pct"] == pytest.approx(20.0)
        assert report["server"]["throughput_qps_delta"] == pytest.approx(
            -10.0
        )

    def test_cli_rejects_mixed_kinds(self, tmp_path):
        plan_diff = _load_tool("plan_diff")
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(self.profile_doc(0.1)))
        b.write_text(json.dumps({"families": {}}))
        assert plan_diff.main([str(a), str(b)]) == 2

    def test_cli_writes_json_report(self, tmp_path, capsys):
        plan_diff = _load_tool("plan_diff")
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        out = tmp_path / "report.json"
        a.write_text(json.dumps(self.profile_doc(0.1)))
        b.write_text(json.dumps(self.profile_doc(0.3)))
        assert plan_diff.main([str(a), str(b), "--json", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["total_wall_delta_s"] == pytest.approx(0.2)
