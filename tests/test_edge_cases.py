"""Edge-case coverage across operators: empty inputs, exotic key types,
boundary frames, and odd-but-legal SQL."""

import datetime

import pytest

from repro import Database, EngineConfig

from tests.helpers import assert_engines_agree


@pytest.fixture
def db():
    database = Database(num_threads=2)
    database.create_table(
        "t", {"k": "int64", "s": "string", "d": "date", "x": "float64"}
    )
    database.insert(
        "t",
        {
            "k": [1, 1, 2, None],
            "s": ["b", "a", "b", None],
            "d": [
                datetime.date(2020, 1, 2),
                datetime.date(2020, 1, 1),
                None,
                datetime.date(2020, 1, 3),
            ],
            "x": [1.5, None, 2.5, 3.5],
        },
    )
    database.create_table("empty", {"k": "int64", "x": "float64"})
    return database


class TestEmptyInputs:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT k, sum(x) FROM empty GROUP BY k",
            "SELECT k, median(x) FROM empty GROUP BY k",
            "SELECT k, count(DISTINCT x) FROM empty GROUP BY k",
            "SELECT k, x, row_number() OVER (PARTITION BY k ORDER BY x) AS rn FROM empty",
            "SELECT k, x FROM empty ORDER BY x LIMIT 5",
            "SELECT k, sum(x) FROM empty GROUP BY GROUPING SETS ((k), ())",
        ],
        ids=range(6),
    )
    def test_empty_table_everywhere(self, db, sql):
        assert_engines_agree(db, sql)

    def test_global_aggregate_on_empty(self, db):
        rows = assert_engines_agree(
            db, "SELECT count(*), sum(x), min(x) FROM empty"
        )
        assert rows == [(0, None, None)]


class TestNullKeys:
    def test_null_group_key(self, db):
        rows = assert_engines_agree(db, "SELECT k, count(*) FROM t GROUP BY k")
        assert (None, 1) in rows

    def test_null_partition_key_window(self, db):
        assert_engines_agree(
            db,
            "SELECT k, x, row_number() OVER (PARTITION BY k ORDER BY x) AS rn "
            "FROM t",
        )

    def test_null_string_and_date_keys(self, db):
        assert_engines_agree(db, "SELECT s, count(*) FROM t GROUP BY s")
        assert_engines_agree(db, "SELECT d, count(*) FROM t GROUP BY d")


class TestMixedKeyTypes:
    def test_group_by_date(self, db):
        rows = assert_engines_agree(
            db, "SELECT d, sum(x) FROM t GROUP BY d"
        )
        assert len(rows) == 4  # three dates + NULL

    def test_sort_by_string_desc(self, db):
        result = db.sql("SELECT s FROM t ORDER BY s DESC")
        values = [r[0] for r in result.rows()]
        assert values == ["b", "b", "a", None]  # NULLS LAST even DESC

    def test_merge_string_keys_across_partitions(self, db):
        # Exercises the multi-batch merge fallback path for strings.
        config = EngineConfig(num_partitions=4, morsel_size=2)
        assert_engines_agree(
            db, "SELECT s, x FROM t ORDER BY s", engines=["lolepop"],
            config=config,
        )

    def test_percentile_over_dates(self, db):
        rows = assert_engines_agree(
            db,
            "SELECT percentile_disc(0.5) WITHIN GROUP (ORDER BY d) FROM t",
        )
        assert rows == [(datetime.date(2020, 1, 2),)]


class TestBoundaryFrames:
    def test_frame_entirely_before_partition(self, db):
        assert_engines_agree(
            db,
            "SELECT k, x, sum(x) OVER (PARTITION BY k ORDER BY x, s "
            "ROWS BETWEEN 5 PRECEDING AND 3 PRECEDING) AS s2 FROM t",
            engines=["lolepop"],
        )

    def test_frame_entirely_after_partition(self, db):
        assert_engines_agree(
            db,
            "SELECT k, x, count(x) OVER (PARTITION BY k ORDER BY x, s "
            "ROWS BETWEEN 3 FOLLOWING AND 5 FOLLOWING) AS c FROM t",
            engines=["lolepop"],
        )

    def test_nth_value_beyond_frame_is_null(self, db):
        rows = db.sql(
            "SELECT k, nth_value(x, 9) OVER (PARTITION BY k ORDER BY x "
            "ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING) AS n "
            "FROM t"
        ).rows()
        assert all(n is None for _, n in rows)


class TestOddButLegal:
    def test_limit_zero(self, db):
        assert len(db.sql("SELECT k FROM t LIMIT 0")) == 0

    def test_offset_beyond_rows(self, db):
        assert len(db.sql("SELECT k FROM t ORDER BY k LIMIT 10 OFFSET 99")) == 0

    def test_group_by_constant_expression(self, db):
        rows = assert_engines_agree(
            db, "SELECT k % 2 AS parity, count(*) FROM t GROUP BY k % 2"
        )
        assert len(rows) == 3  # 0, 1, NULL

    def test_having_without_matching_groups(self, db):
        rows = db.sql(
            "SELECT k, count(*) FROM t GROUP BY k HAVING count(*) > 99"
        ).rows()
        assert rows == []

    def test_duplicate_order_keys(self, db):
        assert_engines_agree(db, "SELECT k, x FROM t ORDER BY k, k, x")

    def test_single_row_table(self):
        db = Database()
        db.create_table("one", {"x": "int64"})
        db.insert("one", {"x": [7]})
        assert_engines_agree(
            db,
            "SELECT x, sum(x) OVER (ORDER BY x) AS s, median(x) OVER () AS m "
            "FROM one",
        )

    def test_distinct_star_like_all_columns(self, db):
        rows = assert_engines_agree(db, "SELECT DISTINCT k, s FROM t")
        assert len(rows) == 4

    def test_union_all_mixed_engines(self, db):
        assert_engines_agree(
            db,
            "SELECT k, sum(x) FROM t GROUP BY k "
            "UNION ALL SELECT k, x FROM empty",
        )
