"""Seeded-corruption tests for the engine concurrency analyzer.

Each static pass is pinned on a synthetic corpus carrying exactly the
defect the pass exists to catch, asserted at the right path, line, rule
and symbol:

- pass 1 (``A1-*``): an unlocked write to lock-guarded shared state;
- pass 2 (``A2-*``): a scatter callable that mutates operator state, an
  input buffer, or closure-shared state inside a parallel region;
- pass 3 (``A3-*``): an operator holding unpicklable closure state.

The real source tree must come out clean modulo the checked-in
allowlist, the allowlist machinery must report stale entries, and the
committed ``analysis/shippability.json`` must equal a fresh rebuild and
classify every registered LOLEPOP.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.findings import Finding, apply_allowlist, load_allowlist
from repro.analysis.report import analyze, analyze_with_allowlist
from repro.analysis.shippability import SCHEMA_VERSION, build_shippability_report

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
ALLOWLIST = REPO_ROOT / "analysis" / "allowlist.json"
SHIPPABILITY = REPO_ROOT / "analysis" / "shippability.json"


def _write_corpus(tmp_path: Path, files: dict) -> Path:
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return tmp_path


def _line_of(root: Path, rel: str, needle: str) -> int:
    for number, line in enumerate(
        (root / rel).read_text().splitlines(), start=1
    ):
        if needle in line:
            return number
    raise AssertionError(f"{needle!r} not found in {rel}")


# ----------------------------------------------------------------------
# Pass 1: lockset / shared-state
# ----------------------------------------------------------------------
def test_a1_unlocked_global_write_detected(tmp_path):
    root = _write_corpus(tmp_path, {
        "cache.py": """
            import threading

            _LOCK = threading.Lock()
            _TABLE = {}


            def put(key, value):
                with _LOCK:
                    _TABLE[key] = value


            def drop(key):
                _TABLE.pop(key, None)
            """,
    })
    findings = analyze(root)
    errors = [f for f in findings if f.severity == "error"]
    assert [f.rule for f in errors] == ["A1-unlocked-global-write"]
    assert errors[0].symbol == "_TABLE"
    assert errors[0].line == _line_of(root, "cache.py", "_TABLE.pop")
    assert "_LOCK" in errors[0].message


def test_a1_unlocked_attr_write_detected(tmp_path):
    root = _write_corpus(tmp_path, {
        "registry.py": """
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.entries = {}
                    self.hits = 0

                def add(self, key, value):
                    with self._lock:
                        self.entries[key] = value

                def bump(self):
                    self.hits += 1

                def get(self, key):
                    with self._lock:
                        self.hits += 1
                        return self.entries.get(key)
            """,
    })
    errors = [f for f in analyze(root) if f.severity == "error"]
    assert [f.rule for f in errors] == ["A1-unlocked-attr-write"]
    assert errors[0].symbol == "Registry.hits"
    assert errors[0].line == _line_of(root, "registry.py", "self.hits += 1")
    assert "bump()" in errors[0].message


def test_a1_clean_when_every_access_is_locked(tmp_path):
    root = _write_corpus(tmp_path, {
        "registry.py": """
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0

                def bump(self):
                    with self._lock:
                        self.hits += 1
            """,
    })
    assert [f for f in analyze(root) if f.severity == "error"] == []


def test_a1_private_helper_called_under_lock_is_not_flagged(tmp_path):
    """A private helper whose every intra-class call site holds the lock
    inherits it (called-under-lock inference) — no false positive."""
    root = _write_corpus(tmp_path, {
        "registry.py": """
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.entries = {}

                def drop(self, key):
                    with self._lock:
                        self._evict(key)

                def clear(self):
                    with self._lock:
                        for key in list(self.entries):
                            self._evict(key)

                def _evict(self, key):
                    self.entries.pop(key, None)
            """,
    })
    assert [f for f in analyze(root) if f.severity == "error"] == []


# ----------------------------------------------------------------------
# Pass 2: scatter purity
# ----------------------------------------------------------------------
def test_a2_scatter_self_write_detected(tmp_path):
    root = _write_corpus(tmp_path, {
        "hashagg.py": """
            class ScatterOp:
                mutates_input = False

                def execute(self, ctx, inputs):
                    def scatter_one(item):
                        self.seen += 1
                        return item

                    return ctx.run_region(
                        self, "scatter", inputs[0], scatter_one
                    )
            """,
    })
    errors = [f for f in analyze(root) if f.severity == "error"]
    assert [f.rule for f in errors] == ["A2-scatter-self-write"]
    assert errors[0].line == _line_of(root, "hashagg.py", "self.seen += 1")


def test_a2_scatter_input_write_detected_and_declaration_suppresses(
    tmp_path,
):
    corpus = """
        class SortishOp:
        {declaration}
            def execute(self, ctx, inputs):
                buf = inputs[0]
                return ctx.run_region(
                    self, "sort", buf.partitions,
                    lambda part: buf.sort_inplace(["k"]),
                )
        """
    root = _write_corpus(tmp_path, {
        "sortish.py": corpus.format(declaration="    mutates_input = False\n"),
    })
    errors = [f for f in analyze(root) if f.severity == "error"]
    assert [f.rule for f in errors] == ["A2-scatter-input-write"]
    assert errors[0].line == _line_of(root, "sortish.py", "buf.sort_inplace")

    declared = _write_corpus(tmp_path / "declared", {
        "sortish.py": corpus.format(declaration="    mutates_input = True\n"),
    })
    assert [f for f in analyze(declared) if f.severity == "error"] == []


def test_a2_scatter_global_write_detected(tmp_path):
    root = _write_corpus(tmp_path, {
        "combine.py": """
            class CombineLikeOp:
                def execute(self, ctx, inputs):
                    total = 0

                    def work(item):
                        nonlocal total
                        total += len(item)

                    ctx.parallel_for("combine", inputs[0], work)
                    return total
            """,
    })
    errors = [f for f in analyze(root) if f.severity == "error"]
    assert [f.rule for f in errors] == ["A2-scatter-global-write"]
    assert errors[0].line == _line_of(root, "combine.py", "total += len")


# ----------------------------------------------------------------------
# Pass 3: process-shippability
# ----------------------------------------------------------------------
def test_a3_unpicklable_attr_detected(tmp_path):
    root = _write_corpus(tmp_path, {
        "source.py": """
            class BadSource:
                def __init__(self, thunk):
                    self._thunk = thunk

                def execute(self, ctx, inputs):
                    return self._thunk()
            """,
    })
    infos = [f for f in analyze(root) if f.rule == "A3-unpicklable-attr"]
    assert len(infos) == 1
    assert infos[0].severity == "info"
    assert infos[0].symbol == "BadSource._thunk"
    assert infos[0].line == _line_of(root, "source.py", "self._thunk = thunk")


# ----------------------------------------------------------------------
# Real tree + allowlist
# ----------------------------------------------------------------------
def test_src_tree_clean_modulo_allowlist():
    result = analyze_with_allowlist(SRC, str(ALLOWLIST))
    assert result.active == [], "\n".join(str(f) for f in result.active)
    assert result.stale == []
    # Exactly the one justified entry (Gauge.set's GIL-atomic store).
    assert [f.symbol for f in result.suppressed] == ["Gauge.value"]


def test_allowlist_reports_stale_entries():
    entry = {
        "rule": "A1-unlocked-attr-write",
        "path": "src/repro/nowhere.py",
        "symbol": "Ghost.attr",
        "justification": "left behind on purpose",
    }
    result = apply_allowlist([], [entry])
    assert result.stale == [entry]


def test_allowlist_matches_on_rule_path_symbol_not_line():
    entry = {
        "rule": "A1-unlocked-attr-write",
        "path": "repro/observability/metrics.py",
        "symbol": "Gauge.value",
        "justification": "j",
    }
    hit = Finding(
        "A1-unlocked-attr-write",
        "src/repro/observability/metrics.py",
        999_999,  # line must not matter
        "m",
        symbol="Gauge.value",
    )
    miss = Finding(
        "A1-unlocked-attr-write",
        "src/repro/observability/metrics.py",
        1,
        "m",
        symbol="Counter.value",
    )
    result = apply_allowlist([hit, miss], [entry])
    assert result.suppressed == [hit]
    assert result.active == [miss]
    assert result.stale == []


def test_allowlist_entries_require_justification(tmp_path):
    path = tmp_path / "allow.json"
    path.write_text(json.dumps({"entries": [
        {"rule": "A1-unlocked-attr-write", "path": "x.py", "symbol": "C.a"}
    ]}))
    with pytest.raises(ValueError, match="justification"):
        load_allowlist(path)


# ----------------------------------------------------------------------
# Shippability report
# ----------------------------------------------------------------------
def test_committed_shippability_report_is_current():
    assert build_shippability_report(SRC) == json.loads(
        SHIPPABILITY.read_text()
    ), "analysis/shippability.json is stale; regenerate with " \
       "`python tools/analyze_engine.py src --write-shippability " \
       "analysis/shippability.json`"


def test_shippability_report_classifies_every_registered_lolepop():
    from repro.lolepop.properties import registered_contracts

    report = build_shippability_report(SRC)
    assert report["schema_version"] == SCHEMA_VERSION
    names = {op["name"] for op in report["operators"]}
    assert names == {c.name for c in registered_contracts()}
    for op in report["operators"]:
        assert op["verdict"] in ("shippable", "needs_rebind", "blocked")
        if op["verdict"] == "shippable":
            assert op["blocking"] == []
        else:
            assert op["blocking"], op
        for entry in op["blocking"]:
            assert set(entry) == {
                "attr", "defined_in", "line", "class", "reason"
            }
    # Storage section pins every dtype=object construction site.
    sites = report["storage"]["object_dtype_sites"]
    assert sites and all(
        s["path"].endswith("storage/column.py") for s in sites
    )


def test_shippability_thunk_sources_need_rebind_core_ops_ship():
    verdicts = {
        op["op"]: op["verdict"]
        for op in build_shippability_report(SRC)["operators"]
    }
    assert verdicts["SourceOp"] == "needs_rebind"
    for core in ("PartitionOp", "SortOp", "MergeOp", "HashAggOp",
                 "OrdAggOp", "WindowOp", "CombineOp", "ScanOp"):
        assert verdicts[core] == "shippable", (core, verdicts[core])
