"""Regression tests for QueryResult.dags construction order.

The docstring promises: a region's DAG is appended before any nested
region its SOURCE thunk triggers, so the query's top region comes first
and nested regions follow in the order execution reached them.
"""

from __future__ import annotations

import pytest

from repro import Database, EngineConfig


@pytest.fixture
def small_db():
    db = Database()
    db.create_table("t", {"k": "int64", "q": "float64"})
    db.insert(
        "t",
        {
            "k": [i % 4 for i in range(40)],
            "q": [float(i) * 0.25 for i in range(40)],
        },
    )
    return db


def test_top_region_dag_comes_before_nested_region(small_db):
    """The outer percentile region (an ORDAGG dag) is translated before
    its SOURCE thunk runs the inner GROUP BY (a HASHAGG dag), so the
    outer dag must be dags[0] and the nested one dags[1]."""
    result = small_db.sql(
        "SELECT median(s) FROM "
        "(SELECT k, sum(q) AS s FROM t GROUP BY k) sub"
    )
    assert len(result.dags) == 2
    outer, inner = result.dags
    assert any("ORDAGG" in name for name in outer.operator_names())
    assert any("HASHAGG" in name for name in inner.operator_names())
    # The nested dag never leaks an ordered-set operator and vice versa.
    assert not any("ORDAGG" in name for name in inner.operator_names())


def test_sibling_regions_appear_in_execution_order(small_db):
    """Two statistics regions met one after another (window over an
    aggregate) are appended in the order execution reached them."""
    result = small_db.sql(
        "SELECT k, s, row_number() OVER (ORDER BY s, k) AS rn FROM "
        "(SELECT k, sum(q) AS s FROM t GROUP BY k) sub"
    )
    assert len(result.dags) == 2
    window_dag, agg_dag = result.dags
    assert any("WINDOW" in name for name in window_dag.operator_names())
    assert any("HASHAGG" in name for name in agg_dag.operator_names())


def test_single_region_query_has_one_dag(small_db):
    result = small_db.sql("SELECT k, sum(q) FROM t GROUP BY k")
    assert len(result.dags) == 1


@pytest.mark.parametrize("mode", ["simulated", "parallel"])
def test_dag_order_is_mode_independent(small_db, mode):
    config = EngineConfig(num_threads=4, execution_mode=mode)
    result = small_db.sql(
        "SELECT median(s) FROM "
        "(SELECT k, sum(q) AS s FROM t GROUP BY k) sub",
        config=config,
    )
    names = [dag.operator_names() for dag in result.dags]
    assert any("ORDAGG" in n for n in names[0])
    assert any("HASHAGG" in n for n in names[1])
