"""Runtime concurrency-sanitizer tests.

Covers the three contracts the sanitizer makes:

- **detection**: a deliberate same-epoch write/write conflict on one
  shared storage object from two worker threads is reported exactly
  once, with both access sites attributed to the racing caller;
- **no false positives**: serial execution, single-thread regions, and
  cross-region (happens-after-barrier) accesses report nothing;
- **zero overhead when off**: with ``SAN.active is None`` a full
  parallel query never enters ``Sanitizer.on_access`` at all
  (count-verified by patching the method), and enabling it makes the
  same query light up the access counters.

Plus the static/dynamic cross-check (``analyzer_false_negatives``) in
both directions and the ``REPRO_SANITIZE`` environment activation.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import Database, EngineConfig
from repro.analysis import sanitizer as san
from repro.analysis.sanitizer import (
    SAN,
    DynamicRace,
    Sanitizer,
    analyzer_false_negatives,
)
from repro.execution.parallel import ParallelScheduler
from repro.execution.scheduler import SimulatedScheduler
from repro.storage.batch import Batch
from repro.storage.buffer import BufferPartition
from repro.storage.column import Column
from repro.types import DataType, Field, Schema

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture
def sanitizer():
    instance = san.enable()
    instance.reset()
    yield instance
    san.disable()


def _schema() -> Schema:
    return Schema([Field("x", DataType.INT64)])


def _batch(schema: Schema) -> Batch:
    return Batch(schema, [Column.from_values(DataType.INT64, [1, 2, 3])])


def _tiny_db() -> Database:
    db = Database()
    db.create_table("t", {"g": "int64", "x": "float64"})
    db.insert("t", {"g": [0, 1, 0, 1, 2, 2], "x": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]})
    return db


_PARALLEL = EngineConfig(
    num_threads=4, num_partitions=8, execution_mode="parallel"
)


# ----------------------------------------------------------------------
# Detection
# ----------------------------------------------------------------------
def test_deliberate_write_write_race_is_detected_once(sanitizer):
    schema = _schema()
    partition = BufferPartition(schema)
    batch = _batch(schema)
    barrier = threading.Barrier(2)
    scheduler = ParallelScheduler(num_threads=2)

    def work(item):
        barrier.wait()  # force both appends into flight simultaneously
        partition.append(batch)
        return item

    scheduler.run_region("TEST", "race", [0, 1], work)

    assert len(sanitizer.races) == 1  # deduped per (object, epoch)
    race = sanitizer.races[0]
    assert race.object_type == "BufferPartition"
    assert (race.operator, race.phase) == ("TEST", "race")
    assert race.kinds == ("w", "w")
    assert race.threads[0] != race.threads[1]
    here = str(Path(__file__))
    assert race.site[0] == here and race.other_site[0] == here
    assert "[sanitizer] dynamic race on BufferPartition" in str(race)


def test_single_thread_region_is_race_free(sanitizer):
    schema = _schema()
    partition = BufferPartition(schema)
    batch = _batch(schema)
    scheduler = ParallelScheduler(num_threads=1)
    scheduler.run_region(
        "TEST", "serial", [0, 1], lambda item: partition.append(batch)
    )
    assert sanitizer.races == []
    assert sanitizer.access_count >= 2


def test_simulated_scheduler_brackets_regions_too(sanitizer):
    schema = _schema()
    partition = BufferPartition(schema)
    batch = _batch(schema)
    scheduler = SimulatedScheduler(num_threads=4)
    scheduler.run_region(
        "TEST", "sim", [0, 1, 2], lambda item: partition.append(batch)
    )
    assert sanitizer.region_count == 1
    assert sanitizer.access_count >= 3
    assert sanitizer.races == []


def test_splittable_sort_region_is_not_flagged(sanitizer):
    """Regression: SORT's splittable path reads each partition on the
    region-owning thread (``split`` → ``compact``) before submitting the
    sort to a worker. Owner accesses are ordered by submission and the
    barrier, so a parallel ORDER BY must be race-free."""
    db = _tiny_db()
    for _ in range(5):
        db.sql(
            "SELECT g, sum(x) FROM t GROUP BY g ORDER BY g", config=_PARALLEL
        )
    assert sanitizer.races == []
    assert sanitizer.access_count > 0


def test_conflicts_across_region_barriers_are_not_races(sanitizer):
    """The barrier is a happens-before edge: the same object written by
    different threads in *different* epochs must not be reported."""
    schema = _schema()
    partition = BufferPartition(schema)
    batch = _batch(schema)
    scheduler = ParallelScheduler(num_threads=2)
    for phase in ("one", "two", "three"):
        scheduler.run_region(
            "TEST", phase, [0], lambda item: partition.append(batch)
        )
    assert sanitizer.region_count == 3
    assert sanitizer.races == []


# ----------------------------------------------------------------------
# Zero overhead when off
# ----------------------------------------------------------------------
def test_disabled_sanitizer_is_never_entered(monkeypatch):
    calls = []
    original = Sanitizer.on_access

    def counting(self, obj, kind):
        calls.append(kind)
        return original(self, obj, kind)

    monkeypatch.setattr(Sanitizer, "on_access", counting)
    db = _tiny_db()

    assert SAN.active is None
    db.sql("SELECT g, sum(x) FROM t GROUP BY g ORDER BY g", config=_PARALLEL)
    assert calls == []  # the off path is one attribute test, no calls

    instance = san.enable()
    try:
        db.sql(
            "SELECT g, sum(x) FROM t GROUP BY g ORDER BY g", config=_PARALLEL
        )
        assert calls  # identical query now drives the instrumentation
        assert instance.region_count > 0
        assert instance.access_count > 0
        assert instance.races == []
    finally:
        san.disable()


def test_environment_variable_activates_sanitizer():
    code = (
        "from repro.analysis.sanitizer import SAN; "
        "assert SAN.active is not None"
    )
    subprocess.run(
        [sys.executable, "-c", code],
        check=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "REPRO_SANITIZE": "on"},
    )
    subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.analysis.sanitizer import SAN; "
            "assert SAN.active is None",
        ],
        check=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
    )


# ----------------------------------------------------------------------
# Static/dynamic cross-check
# ----------------------------------------------------------------------
def _race_at(path: str) -> DynamicRace:
    return DynamicRace(
        "BufferPartition", "HASHAGG", "scatter", 7,
        (path, 10), (path, 20), (111, 222), ("w", "w"),
    )


def test_dynamic_race_with_static_finding_is_not_a_false_negative():
    race = _race_at("/abs/src/repro/execution/parallel.py")

    class Static:
        rule = "A1-unlocked-attr-write"
        path = "src/repro/execution/parallel.py"

    assert analyzer_false_negatives([race], [Static()]) == []


def test_dynamic_race_without_static_finding_is_a_false_negative():
    race = _race_at("/abs/src/repro/execution/parallel.py")

    class Elsewhere:
        rule = "A2-scatter-self-write"
        path = "src/repro/reuse/manager.py"

    class WrongRule:  # A3 inventory findings never cover a race
        rule = "A3-unpicklable-attr"
        path = "src/repro/execution/parallel.py"

    assert analyzer_false_negatives([race], [Elsewhere(), WrongRule()]) == [
        race
    ]
