"""Tests for segment trees / sparse tables / prefix sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.lolepop.segment_tree import PrefixSums, SegmentTree, SparseTable


class TestSegmentTree:
    def test_basic_queries(self):
        tree = SegmentTree(np.array([3.0, 1.0, 4.0, 1.0, 5.0]), "min")
        assert tree.query(0, 5) == 1.0
        assert tree.query(2, 3) == 4.0
        assert tree.query(2, 5) == 1.0

    def test_sum_tree(self):
        tree = SegmentTree(np.array([1.0, 2.0, 3.0]), "sum")
        assert tree.query(0, 3) == 6.0
        assert tree.query(1, 2) == 2.0

    def test_empty_range_identity(self):
        tree = SegmentTree(np.array([1.0]), "max")
        assert tree.query(1, 1) == -np.inf

    def test_unknown_op(self):
        with pytest.raises(ExecutionError):
            SegmentTree(np.array([1.0]), "avg")


class TestSparseTable:
    def test_matches_naive(self):
        rng = np.random.default_rng(5)
        data = rng.random(37)
        table = SparseTable(data, "min")
        lo = np.array([0, 3, 10, 36, 5])
        hi = np.array([37, 4, 20, 37, 5])
        out = table.query_many(lo, hi)
        for i in range(len(lo)):
            if lo[i] >= hi[i]:
                assert out[i] == np.inf
            else:
                assert out[i] == data[lo[i] : hi[i]].min()

    def test_max_variant(self):
        data = np.array([1.0, 9.0, 2.0])
        out = SparseTable(data, "max").query_many(np.array([0]), np.array([3]))
        assert out[0] == 9.0

    def test_only_min_max(self):
        with pytest.raises(ExecutionError):
            SparseTable(np.array([1.0]), "sum")


class TestPrefixSums:
    def test_ranges(self):
        ps = PrefixSums(np.array([1.0, 2.0, 3.0, 4.0]))
        assert list(ps.query_many(np.array([0, 1]), np.array([4, 3]))) == [10.0, 5.0]

    def test_empty_range_zero(self):
        ps = PrefixSums(np.array([1.0, 2.0]))
        assert ps.query_many(np.array([1]), np.array([1]))[0] == 0.0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=64),
    st.data(),
)
def test_segment_tree_equals_sparse_table_and_naive(values, data):
    """Property: all three range-aggregation structures agree with a naive
    loop for min queries."""
    arr = np.array(values)
    lo = data.draw(st.integers(0, len(arr) - 1))
    hi = data.draw(st.integers(lo + 1, len(arr)))
    tree = SegmentTree(arr, "min")
    table = SparseTable(arr, "min")
    naive = arr[lo:hi].min()
    assert tree.query(lo, hi) == pytest.approx(naive)
    assert table.query_many(np.array([lo]), np.array([hi]))[0] == pytest.approx(naive)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=64), st.data())
def test_prefix_sums_match_naive(values, data):
    arr = np.array(values)
    lo = data.draw(st.integers(0, len(arr)))
    hi = data.draw(st.integers(lo, len(arr)))
    ps = PrefixSums(arr)
    assert ps.query_many(np.array([lo]), np.array([hi]))[0] == pytest.approx(
        arr[lo:hi].sum() if hi > lo else 0.0
    )
