"""Property-based (hypothesis) tests on end-to-end engine behavior."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, EngineConfig

from tests.helpers import assert_engines_agree, normalized_rows

settings.register_profile(
    "engine", max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_db(rows):
    database = Database(num_threads=2)
    database.create_table("t", {"g": "int64", "x": "int64", "y": "float64"})
    database.insert(
        "t",
        {
            "g": [g for g, _, _ in rows],
            "x": [x for _, x, _ in rows],
            "y": [y for _, _, y in rows],
        },
    )
    return database


row_strategy = st.tuples(
    st.integers(0, 4),
    st.one_of(st.integers(-20, 20), st.none()),
    st.one_of(
        st.floats(-100, 100, allow_nan=False, allow_infinity=False).map(
            lambda v: round(v, 3)
        ),
        st.none(),
    ),
)


@settings(settings.get_profile("engine"))
@given(st.lists(row_strategy, min_size=1, max_size=60))
def test_associative_aggregation_property(rows):
    db = build_db(rows)
    assert_engines_agree(
        db, "SELECT g, sum(x), count(x), min(y), max(y), count(*) FROM t GROUP BY g"
    )


@settings(settings.get_profile("engine"))
@given(st.lists(row_strategy, min_size=1, max_size=60))
def test_distinct_aggregation_property(rows):
    db = build_db(rows)
    assert_engines_agree(
        db, "SELECT g, count(DISTINCT x), sum(DISTINCT x) FROM t GROUP BY g"
    )


@settings(settings.get_profile("engine"))
@given(st.lists(row_strategy, min_size=1, max_size=60))
def test_percentile_property(rows):
    db = build_db(rows)
    assert_engines_agree(
        db,
        "SELECT g, percentile_disc(0.5) WITHIN GROUP (ORDER BY y), "
        "percentile_cont(0.25) WITHIN GROUP (ORDER BY x) FROM t GROUP BY g",
    )


@settings(settings.get_profile("engine"))
@given(st.lists(row_strategy, min_size=1, max_size=50))
def test_grouping_sets_property(rows):
    db = build_db(rows)
    assert_engines_agree(
        db,
        "SELECT g, x, sum(y), count(*) FROM t "
        "GROUP BY GROUPING SETS ((g, x), (g), ())",
    )


@settings(settings.get_profile("engine"))
@given(st.lists(row_strategy, min_size=1, max_size=50))
def test_window_property(rows):
    db = build_db(rows)
    assert_engines_agree(
        db,
        "SELECT g, x, row_number() OVER (PARTITION BY g ORDER BY x, y) AS rn, "
        "sum(x) OVER (PARTITION BY g ORDER BY x, y) AS cs FROM t",
    )


@settings(settings.get_profile("engine"))
@given(
    st.lists(row_strategy, min_size=2, max_size=50),
    st.integers(1, 6),
    st.integers(1, 16),
)
def test_configuration_invariance(rows, threads, partitions):
    """The answer never depends on threads/partitions/morsel size."""
    db = build_db(rows)
    sql = "SELECT g, sum(x), median(y) FROM t GROUP BY g"
    baseline = normalized_rows(db.sql(sql, engine="naive"))
    config = EngineConfig(
        num_threads=threads, num_partitions=partitions, morsel_size=7
    )
    got = normalized_rows(db.sql(sql, engine="lolepop", config=config))
    assert got == baseline
