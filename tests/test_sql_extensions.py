"""Tests for RANGE frames (peer-aware) and IN (subquery) support."""

import pytest

from repro import Database
from repro.errors import BindError, NotSupportedError

from tests.helpers import assert_engines_agree


@pytest.fixture
def db():
    database = Database(num_threads=2)
    database.create_table("t", {"g": "int64", "o": "int64", "x": "int64"})
    # Deliberate ties in the order key `o`.
    database.insert(
        "t",
        {
            "g": [1, 1, 1, 1, 2, 2, 2],
            "o": [10, 10, 20, 30, 5, 5, 5],
            "x": [1, 2, 4, 8, 16, 32, 64],
        },
    )
    database.create_table("allowed", {"v": "int64"})
    database.insert("allowed", {"v": [1, 2]})
    return database


class TestRangeFrames:
    def test_default_frame_includes_peers(self, db):
        """SQL default frame is RANGE: tied order keys share the running
        sum — deterministic even under ties."""
        rows = db.sql(
            "SELECT g, o, x, sum(x) OVER (PARTITION BY g ORDER BY o) AS s FROM t"
        ).rows()
        by_g1 = sorted(
            [(o, x, s) for g, o, x, s in rows if g == 1]
        )
        # o=10 peers: both rows see 1+2=3; o=20 sees 7; o=30 sees 15.
        assert by_g1 == [(10, 1, 3), (10, 2, 3), (20, 4, 7), (30, 8, 15)]
        by_g2 = [(o, s) for g, o, x, s in rows if g == 2]
        assert all(s == 112 for _, s in by_g2)

    def test_explicit_range_frame(self, db):
        rows = db.sql(
            "SELECT g, o, count(*) OVER (PARTITION BY g ORDER BY o "
            "RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS c FROM t"
        ).rows()
        g1 = sorted((o, c) for g, o, c in rows if g == 1)
        assert g1 == [(10, 2), (10, 2), (20, 3), (30, 4)]

    def test_rows_frame_still_positional(self, db):
        rows = db.sql(
            "SELECT g, o, count(*) OVER (PARTITION BY g ORDER BY o, x "
            "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS c FROM t"
        ).rows()
        g1 = sorted(c for g, o, c in rows if g == 1)
        assert g1 == [1, 2, 3, 4]

    def test_engines_agree_with_ties(self, db):
        assert_engines_agree(
            db,
            "SELECT g, o, x, sum(x) OVER (PARTITION BY g ORDER BY o) AS s, "
            "min(x) OVER (PARTITION BY g ORDER BY o) AS m FROM t",
        )

    def test_range_with_offsets_rejected(self, db):
        with pytest.raises(NotSupportedError):
            db.plan(
                "SELECT sum(x) OVER (ORDER BY o RANGE BETWEEN 1 PRECEDING "
                "AND CURRENT ROW) FROM t"
            )

    def test_last_value_range_sees_whole_peer_group(self, db):
        rows = db.sql(
            "SELECT g, o, x, last_value(x) OVER (PARTITION BY g ORDER BY o "
            "RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS lv FROM t"
        ).rows()
        g1 = sorted((o, x, lv) for g, o, x, lv in rows if g == 1)
        # Both o=10 rows see the last peer (x=2).
        assert g1[0][2] == 2 and g1[1][2] == 2


class TestInSubquery:
    def test_semi_join(self, db):
        rows = db.sql(
            "SELECT x FROM t WHERE x IN (SELECT v FROM allowed)"
        ).rows()
        assert sorted(r[0] for r in rows) == [1, 2]

    def test_anti_join(self, db):
        rows = db.sql(
            "SELECT x FROM t WHERE x NOT IN (SELECT v FROM allowed)"
        ).rows()
        assert sorted(r[0] for r in rows) == [4, 8, 16, 32, 64]

    def test_subquery_with_aggregation(self, db):
        rows = db.sql(
            "SELECT g, x FROM t WHERE g IN "
            "(SELECT g FROM t GROUP BY g HAVING count(*) > 3)"
        ).rows()
        assert {g for g, _ in rows} == {1}

    def test_engines_agree(self, db):
        assert_engines_agree(
            db, "SELECT g, sum(x) FROM t WHERE x IN (SELECT v FROM allowed) GROUP BY g"
        )

    def test_single_column_required(self, db):
        with pytest.raises(BindError):
            db.plan("SELECT x FROM t WHERE x IN (SELECT g, x FROM t)")

    def test_complex_operand_rejected(self, db):
        with pytest.raises(NotSupportedError):
            db.plan("SELECT x FROM t WHERE x + 1 IN (SELECT v FROM allowed)")
