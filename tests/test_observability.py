"""Metrics, per-operator stats, EXPLAIN ANALYZE, and Chrome-trace export."""

import json
import random

import pytest

from repro import Database
from repro.errors import ReproError
from repro.execution.context import EngineConfig
from repro.execution.trace import ExecutionTrace, TraceRecord
from repro.observability import (
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OperatorStats,
    QueryProfile,
    chrome_trace_events,
    validate_trace_events,
    write_chrome_trace,
)
from repro.observability.analyze import q_error
from repro.sql import parse_sql
from repro.sql.ast import ExplainStmt

#: The acceptance query: grouping sets + window + DISTINCT (the DISTINCT
#: aggregate lives in a nested region — combining it with grouping sets in
#: one region is unsupported by design).
ACCEPTANCE_SQL = (
    "SELECT k, g, sum(rn), count(*) FROM ("
    "  SELECT k, g, row_number() OVER (PARTITION BY k ORDER BY v) AS rn, v"
    "  FROM (SELECT k, g, count(DISTINCT v) AS v FROM r GROUP BY k, g) AS d"
    ") AS w GROUP BY GROUPING SETS ((k, g), (k), ())"
)


@pytest.fixture
def db():
    database = Database(num_threads=4)
    database.create_table(
        "r", {"k": "int64", "g": "int64", "v": "float64"}
    )
    rng = random.Random(7)
    n = 2000
    database.insert(
        "r",
        {
            "k": [rng.randint(0, 5) for _ in range(n)],
            "g": [rng.randint(0, 3) for _ in range(n)],
            "v": [rng.random() for _ in range(n)],
        },
    )
    return database


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------


class TestMetricsPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_histogram(self):
        hist = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.total == 5
        assert hist.mean == pytest.approx(56.05 / 5)
        assert hist.counts == [1, 2, 1, 1]
        # Interpolated within the (0.1, 1.0] bucket: target rank 2.5 of 5,
        # 1 observation below the bucket, 2 inside -> 0.1 + 0.75 * 0.9.
        assert hist.quantile(0.5) == pytest.approx(0.775)
        snapshot = hist.to_dict()
        assert snapshot["total"] == 5 and snapshot["overflow"] == 1

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0 and hist.quantile(0.9) == 0.0

    def test_registry_reuses_instances(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.counter("a").inc(3)
        assert registry.snapshot()["a"] == 3.0

    def test_registry_type_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_registry_reset(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.snapshot() == {}


class TestOperatorStats:
    def test_batch_list_accounting(self, db):
        from repro.storage.batch import Batch
        from repro.types import Schema

        schema = Schema.of(("a", "int64"))
        batches = [
            Batch.from_pydict(schema, {"a": [1, 2, 3]}),
            Batch.from_pydict(schema, {"a": [4]}),
        ]
        stats = OperatorStats()
        stats.add_input(batches)
        stats.add_output(batches[:1])
        assert stats.rows_in == 4 and stats.batches_in == 2
        assert stats.rows_out == 3 and stats.batches_out == 1

    def test_to_dict_includes_extra(self):
        stats = OperatorStats()
        stats.extra["mode"] = "inplace"
        payload = stats.to_dict()
        assert payload["rows_out"] == 0
        assert payload["extra"] == {"mode": "inplace"}


# ----------------------------------------------------------------------
# Query profiles
# ----------------------------------------------------------------------


class TestQueryProfile:
    def test_off_by_default(self, db):
        result = db.sql("SELECT k, sum(v) FROM r GROUP BY k")
        assert result.profile is None
        for dag in result.dags:
            assert all(n.stats is None for n in dag.topological_order())

    def test_profile_collection(self, db):
        config = EngineConfig(num_threads=4, collect_metrics=True)
        result = db.sql("SELECT k, sum(v) FROM r GROUP BY k", config=config)
        profile = result.profile
        assert isinstance(profile, QueryProfile)
        assert profile.num_threads == 4
        assert profile.serial_time > 0 and profile.makespan > 0
        stats = profile.operator_stats()
        assert stats, "every DAG node should carry stats"
        names = [name for _, _, name, _, _ in stats]
        assert "HASHAGG" in names and "SCAN" in names
        scan = next(s for _, _, n, _, s in stats if n == "SCAN")
        assert scan.rows_out == len(result)
        assert profile.total_operator_time() > 0

    def test_profile_to_dict_round_trips(self, db):
        config = EngineConfig(
            num_threads=2, collect_metrics=True, collect_trace=True
        )
        result = db.sql(
            "SELECT k, median(v) FROM r GROUP BY k", config=config
        )
        payload = result.profile.to_dict(trace=result.trace)
        decoded = json.loads(json.dumps(payload))
        assert decoded["num_threads"] == 2
        assert decoded["dags"] and decoded["dags"][0]["operators"]
        assert decoded["trace_events"]
        validate_trace_events(decoded["trace_events"])

    def test_global_metrics_fed(self, db):
        before = GLOBAL_METRICS.counter("queries.total").value
        db.sql("SELECT count(*) FROM r")
        after = GLOBAL_METRICS.counter("queries.total").value
        assert after == before + 1

    def test_config_clone(self):
        config = EngineConfig(num_threads=3, execution_mode="parallel")
        clone = config.clone(collect_metrics=True)
        assert clone.num_threads == 3
        assert clone.execution_mode == "parallel"
        assert clone.collect_metrics is True
        assert config.collect_metrics is False


# ----------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE
# ----------------------------------------------------------------------


class TestExplainParsing:
    def test_modes(self):
        assert not isinstance(parse_sql("SELECT 1"), ExplainStmt)
        plain = parse_sql("EXPLAIN SELECT 1")
        assert isinstance(plain, ExplainStmt) and plain.mode == "plan"
        lolepop = parse_sql("EXPLAIN LOLEPOP SELECT 1")
        assert lolepop.mode == "lolepop"
        analyze = parse_sql("EXPLAIN ANALYZE SELECT 1")
        assert analyze.mode == "analyze"

    def test_explain_still_returns_plan_rows(self, db):
        result = db.sql("EXPLAIN SELECT k, sum(v) FROM r GROUP BY k")
        assert result.schema.names() == ["plan"]
        text = "\n".join(result.batch.to_pydict()["plan"])
        assert "AGGREGATE" in text

    def test_explain_lolepop(self, db):
        result = db.sql("EXPLAIN LOLEPOP SELECT k, sum(v) FROM r GROUP BY k")
        text = "\n".join(result.batch.to_pydict()["plan"])
        assert "HASHAGG" in text

    def test_trailing_garbage_rejected(self, db):
        with pytest.raises(ReproError):
            db.sql("EXPLAIN ANALYZE SELECT 1 x y z;!")


class TestExplainAnalyze:
    def test_acceptance_query(self, db):
        report = db.explain_analyze(ACCEPTANCE_SQL)
        # Per-operator actual rows, estimates, time share.
        assert "rows=" in report and "est=" in report and "q=" in report
        assert "time=" in report and "%" in report
        # All three regions of the query made it into the report.
        assert "-- region 2 --" in report
        assert "HASHAGG" in report and "WINDOW" in report
        # Buffer-reuse and spill counter trailer + Q-error summary.
        assert "buffer-reuse:" in report and "sort-elisions:" in report
        assert "spill:" in report and "written" in report
        assert "max Q-error:" in report
        assert "makespan" in report

    def test_actual_rows_match_result(self, db):
        sql = "SELECT k, sum(v) FROM r GROUP BY k"
        result = db.sql(sql)
        report = db.explain_analyze(sql)
        scan_line = next(
            line for line in report.splitlines() if " SCAN " in line
        )
        assert f"rows={len(result)}" in scan_line

    def test_sql_statement_form(self, db):
        result = db.sql(f"EXPLAIN ANALYZE {ACCEPTANCE_SQL}")
        assert result.schema.names() == ["plan"]
        assert result.profile is not None
        assert result.trace is not None and result.trace.records

    def test_parallel_mode(self, db):
        config = EngineConfig(num_threads=2, execution_mode="parallel")
        report = db.explain_analyze(
            "SELECT k, median(v) FROM r GROUP BY k", config=config
        )
        assert "measured mode" in report or "parallel mode" in report
        assert "rows=" in report

    def test_q_error(self):
        assert q_error(10, 10) == 1.0
        assert q_error(100, 10) == 10.0
        assert q_error(10, 100) == 10.0
        assert q_error(0, 5) == 5.0  # clamped to one row
        assert q_error(None, 5) is None


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


class TestChromeTrace:
    def _traced(self, db, mode="simulated"):
        config = EngineConfig(
            num_threads=2, collect_trace=True, execution_mode=mode
        )
        return db.sql(
            "SELECT k, g, sum(v) FROM r GROUP BY GROUPING SETS ((k, g), (k))",
            config=config,
        )

    def test_event_schema(self, db):
        result = self._traced(db)
        events = chrome_trace_events(result.trace)
        assert events
        validate_trace_events(events)
        for event in events:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert event["ph"] == "X"
        # Both lanes: per-morsel work items and region spans.
        assert any(event["pid"] == 0 for event in events)
        assert any(
            event["pid"] == 1 and event["name"].startswith("region:")
            for event in events
        )

    def test_round_trip_through_json(self, db, tmp_path):
        result = self._traced(db)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), result.trace)
        decoded = json.loads(path.read_text())
        assert isinstance(decoded, list) and len(decoded) == count
        validate_trace_events(decoded)

    def test_parallel_mode_spans(self, db, tmp_path):
        result = self._traced(db, mode="parallel")
        assert result.trace.regions
        for span in result.trace.regions:
            assert span.end >= span.start >= 0.0
        path = tmp_path / "parallel.json"
        count = write_chrome_trace(str(path), result.trace)
        assert count == len(result.trace.records) + len(result.trace.regions)
        validate_trace_events(json.loads(path.read_text()))

    def test_validation_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_trace_events({"not": "a list"})
        with pytest.raises(ValueError):
            validate_trace_events([{"name": "x", "ph": "X"}])
        with pytest.raises(ValueError):
            validate_trace_events(
                [{"name": "x", "ph": "B", "ts": 0, "dur": 1, "pid": 0, "tid": 0}]
            )


# ----------------------------------------------------------------------
# Trace regions + rendering regressions
# ----------------------------------------------------------------------


class TestTraceRegions:
    def test_simulated_records_regions(self, db):
        config = EngineConfig(num_threads=2, collect_trace=True)
        result = db.sql("SELECT k, sum(v) FROM r GROUP BY k", config=config)
        assert result.trace.regions
        operators = {span.operator for span in result.trace.regions}
        assert operators & {"hashagg", "hashagg-merge", "tablescan"}

    def test_legend_letters_never_collide(self):
        trace = ExecutionTrace()
        for index, operator in enumerate(["sort", "spill", "scan", "source"]):
            trace.add(TraceRecord(0, index, index + 1, operator, "p0"))
        letters = trace.legend_letters()
        # Four operators share the initial 'S'; each must get a distinct,
        # deterministic letter (first free letter of its own name).
        assert letters["sort"] == "S"
        assert letters["spill"] == "P"
        assert letters["scan"] == "C"
        assert letters["source"] == "O"
        assert len(set(letters.values())) == len(letters)
        assert trace.legend_letters() == letters  # deterministic

    def test_legend_exhaustion_falls_back_to_alphabet(self):
        trace = ExecutionTrace()
        trace.add(TraceRecord(0, 0.0, 1.0, "aaa", "p0"))
        trace.add(TraceRecord(0, 1.0, 2.0, "aa", "p0"))
        letters = trace.legend_letters()
        assert letters["aaa"] == "A"
        assert letters["aa"] != "A"
        rendered = trace.render(width=40)
        assert letters["aa"] in rendered

    def test_render_uses_unique_letters(self):
        trace = ExecutionTrace()
        trace.add(TraceRecord(0, 0.0, 0.5, "sort", "p0"))
        trace.add(TraceRecord(1, 0.0, 0.5, "spill", "p0"))
        rendered = trace.render(width=20)
        assert "S=sort" in rendered and "P=spill" in rendered


class TestOperatorSummary:
    def test_includes_zero_output_operators(self, db):
        config = EngineConfig(num_threads=2, collect_trace=True)
        result = db.sql("SELECT k, sum(v) FROM r GROUP BY k", config=config)
        summary = result.operator_summary()
        for dag in result.dags:
            for name in dag.operator_names():
                assert name.lower() in summary
        # SOURCE never emits trace records itself (its pipeline's operators
        # do), so it must appear with zero counts rather than be dropped.
        assert summary["source"] == (0.0, 0)
