"""Unit tests for the SQL parser (AST shapes)."""

import pytest

from repro.errors import ParseError
from repro.sql import parse_sql
from repro.sql import ast as A


class TestSelectCore:
    def test_items_and_aliases(self):
        stmt = parse_sql("SELECT a, b AS x, c y FROM t")
        assert [i.alias for i in stmt.items] == [None, "x", "y"]

    def test_star(self):
        stmt = parse_sql("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, A.SqlStar)
        assert stmt.items[1].expr.table == "t"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_where_having_limit_offset(self):
        stmt = parse_sql(
            "SELECT a FROM t WHERE a > 1 GROUP BY a HAVING count(*) > 2 "
            "ORDER BY a DESC LIMIT 10 OFFSET 5"
        )
        assert stmt.where is not None
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert (stmt.limit, stmt.offset) == (10, 5)


class TestFromClause:
    def test_join_kinds(self):
        stmt = parse_sql(
            "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON a.x = c.x "
            "SEMI JOIN d ON a.x = d.x ANTI JOIN e ON a.x = e.x"
        )
        node = stmt.from_clause
        kinds = []
        while isinstance(node, A.JoinedTable):
            kinds.append(node.kind)
            node = node.left
        assert kinds == ["anti", "semi", "left", "inner"]

    def test_comma_join(self):
        stmt = parse_sql("SELECT 1 FROM a, b")
        assert isinstance(stmt.from_clause, A.JoinedTable)

    def test_derived_table(self):
        stmt = parse_sql("SELECT 1 FROM (SELECT a FROM t) AS sub")
        assert isinstance(stmt.from_clause, A.DerivedTable)
        assert stmt.from_clause.alias == "sub"

    def test_cte(self):
        stmt = parse_sql("WITH c AS (SELECT a FROM t) SELECT a FROM c")
        assert stmt.ctes[0][0] == "c"


class TestGroupBy:
    def test_plain_keys(self):
        stmt = parse_sql("SELECT 1 FROM t GROUP BY a, b")
        assert stmt.group_by.sets is None
        assert len(stmt.group_by.keys) == 2

    def test_grouping_sets(self):
        stmt = parse_sql(
            "SELECT 1 FROM t GROUP BY GROUPING SETS ((a, b), (a), ())"
        )
        assert [len(s) for s in stmt.group_by.sets] == [2, 1, 0]

    def test_shorthand_set_list(self):
        stmt = parse_sql("SELECT 1 FROM t GROUP BY ((a,b),(a),(b))")
        assert [len(s) for s in stmt.group_by.sets] == [2, 1, 1]

    def test_parenthesized_key_list_is_not_sets(self):
        stmt = parse_sql("SELECT 1 FROM t GROUP BY (a, b)")
        assert stmt.group_by.sets is None
        assert len(stmt.group_by.keys) == 2

    def test_rollup(self):
        stmt = parse_sql("SELECT 1 FROM t GROUP BY ROLLUP (a, b)")
        assert [len(s) for s in stmt.group_by.sets] == [2, 1, 0]

    def test_cube(self):
        stmt = parse_sql("SELECT 1 FROM t GROUP BY CUBE (a, b)")
        assert sorted(len(s) for s in stmt.group_by.sets) == [0, 1, 1, 2]


class TestExpressions:
    def expr(self, text):
        return parse_sql(f"SELECT {text} FROM t").items[0].expr

    def test_precedence(self):
        node = self.expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_unary_minus_folds_literals(self):
        node = self.expr("-5")
        assert isinstance(node, A.SqlLiteral) and node.value == -5

    def test_between(self):
        node = self.expr("a BETWEEN 1 AND 2")
        assert isinstance(node, A.SqlBetween)

    def test_not_in(self):
        node = self.expr("a NOT IN (1, 2)")
        assert isinstance(node, A.SqlInList) and node.negated

    def test_is_not_null(self):
        node = self.expr("a IS NOT NULL")
        assert isinstance(node, A.SqlIsNull) and node.negated

    def test_case_simple_and_searched(self):
        searched = self.expr("CASE WHEN a THEN 1 ELSE 2 END")
        assert searched.operand is None
        simple = self.expr("CASE a WHEN 1 THEN 'x' END")
        assert simple.operand is not None

    def test_cast(self):
        node = self.expr("CAST(a AS float)")
        assert isinstance(node, A.SqlCast) and node.type_name == "float"

    def test_date_literal(self):
        node = self.expr("date '1995-01-01'")
        assert isinstance(node, A.SqlLiteral) and node.kind == "date"

    def test_concat_operator(self):
        node = self.expr("a || b")
        assert isinstance(node, A.SqlFunc) and node.name == "concat"

    def test_exists(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(stmt.where, A.SqlExists)

    def test_not_exists(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
        assert stmt.where.negated


class TestAggregatesAndWindows:
    def expr(self, text):
        return parse_sql(f"SELECT {text} FROM t").items[0].expr

    def test_count_star_and_distinct(self):
        node = self.expr("count(*)")
        assert isinstance(node.args[0], A.SqlStar)
        node = self.expr("count(DISTINCT a)")
        assert node.distinct

    def test_within_group(self):
        node = self.expr(
            "percentile_disc(0.5) WITHIN GROUP (ORDER BY a DESC)"
        )
        assert node.within_group[0].descending

    def test_over_clause(self):
        node = self.expr(
            "sum(a) OVER (PARTITION BY b ORDER BY c ROWS BETWEEN 1 PRECEDING AND 2 FOLLOWING)"
        )
        assert len(node.over.partition_by) == 1
        assert node.over.frame.start == ("preceding", 1)
        assert node.over.frame.end == ("following", 2)

    def test_frame_shorthand(self):
        node = self.expr("sum(a) OVER (ORDER BY c ROWS UNBOUNDED PRECEDING)")
        assert node.over.frame.start == ("unbounded_preceding", 0)
        assert node.over.frame.end == ("current", 0)


class TestUnionAll:
    def test_chain(self):
        stmt = parse_sql(
            "SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v "
            "ORDER BY a LIMIT 3"
        )
        assert stmt.union_all is not None
        assert stmt.union_all.union_all is not None
        assert stmt.limit == 3


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP BY",
            "SELECT a FROM t trailing garbage (",
            "SELECT CASE END FROM t",
            "SELECT a FROM t LIMIT x",
            "SELECT cast(a AS) FROM t",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_sql(bad)
