"""Unit tests of the naive row engine's semantics (it is the oracle, so its
own behavior is pinned here against hand-computed expectations)."""

import pytest

from repro import Database
from repro.baseline.naive import _null_safe_sort, _percentile


class TestNullSafeSort:
    def test_nulls_last_ascending(self):
        rows = [{"x": None}, {"x": 2}, {"x": 1}]
        out = _null_safe_sort(rows, [("x", False)])
        assert [r["x"] for r in out] == [1, 2, None]

    def test_nulls_last_descending(self):
        rows = [{"x": None}, {"x": 2}, {"x": 1}]
        out = _null_safe_sort(rows, [("x", True)])
        assert [r["x"] for r in out] == [2, 1, None]

    def test_multi_key_stability(self):
        rows = [
            {"a": 1, "b": "z"}, {"a": 1, "b": "a"}, {"a": 0, "b": "m"},
        ]
        out = _null_safe_sort(rows, [("a", False), ("b", False)])
        assert [(r["a"], r["b"]) for r in out] == [(0, "m"), (1, "a"), (1, "z")]


class TestPercentileReference:
    def test_disc(self):
        assert _percentile("percentile_disc", [1, 2, 3, 4], 0.5) == 2
        assert _percentile("percentile_disc", [1, 2, 3], 0.5) == 2
        assert _percentile("percentile_disc", [5], 0.99) == 5

    def test_cont(self):
        assert _percentile("percentile_cont", [1, 3], 0.5) == 2.0
        assert _percentile("percentile_cont", [1, 2, 3], 0.5) == 2.0

    def test_empty(self):
        assert _percentile("percentile_disc", [], 0.5) is None


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", {"g": "int64", "x": "int64"})
    database.insert(
        "t",
        {"g": [1, 1, 1, 2, 2], "x": [10, None, 30, 5, 5]},
    )
    return database


class TestHandComputedAnswers:
    def test_aggregates(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, sum(x), count(x), count(*), min(x), max(x) "
                "FROM t GROUP BY g",
                engine="naive",
            ).rows()
        )
        assert rows == [(1, 40, 2, 3, 10, 30), (2, 10, 2, 2, 5, 5)]

    def test_distinct(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, count(DISTINCT x), sum(DISTINCT x) FROM t GROUP BY g",
                engine="naive",
            ).rows()
        )
        assert rows == [(1, 2, 40), (2, 1, 5)]

    def test_percentile_skips_nulls(self, db):
        rows = sorted(
            db.sql(
                "SELECT g, percentile_disc(0.5) WITHIN GROUP (ORDER BY x) "
                "FROM t GROUP BY g",
                engine="naive",
            ).rows()
        )
        assert rows == [(1, 10), (2, 5)]

    def test_global_aggregate_on_empty_table(self):
        database = Database()
        database.create_table("e", {"x": "int64"})
        rows = database.sql(
            "SELECT count(*), sum(x) FROM e", engine="naive"
        ).rows()
        assert rows == [(0, None)]

    def test_window_lag_default(self, db):
        rows = db.sql(
            "SELECT g, x, lag(x, 1, -1) OVER (PARTITION BY g ORDER BY x) AS p "
            "FROM t WHERE x IS NOT NULL",
            engine="naive",
        ).rows()
        by_g = {}
        for g, x, p in sorted(rows):
            by_g.setdefault(g, []).append(p)
        assert by_g[1] == [-1, 10]
        assert by_g[2] == [-1, 5]

    def test_grouping_sets_grouping_id(self, db):
        rows = db.sql(
            "SELECT g, sum(x), grouping_id FROM t GROUP BY GROUPING SETS ((g), ())",
            engine="naive",
        ).rows()
        ids = sorted(r[2] for r in rows)
        assert ids == [0, 0, 1]
        total = [r for r in rows if r[2] == 1]
        assert total[0][:2] == (None, 50)
