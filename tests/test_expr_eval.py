"""Tests for expression evaluation: vectorized and row-at-a-time must agree
(the row evaluator is the differential oracle's foundation)."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BindError
from repro.expr import BinaryOp, CaseExpr, Cast, ColumnRef, FuncCall, InList, IsNull, UnaryOp, col, evaluate, evaluate_row, infer_dtype, lit, columns_referenced
from repro.storage import Batch
from repro.types import DataType, Schema

SCHEMA = Schema.of(
    ("a", "int64"), ("b", "float64"), ("s", "string"), ("d", "date"), ("f", "bool")
)


def make_batch(rows):
    data = {name: [] for name in SCHEMA.names()}
    for row in rows:
        for name in SCHEMA.names():
            data[name].append(row.get(name))
    return Batch.from_pydict(SCHEMA, data)


def both_ways(expr, rows):
    """Evaluate vectorized and per-row; assert agreement; return values."""
    batch = make_batch(rows)
    vector = evaluate(expr, batch).to_pylist()
    scalar = [evaluate_row(expr, row) for row in rows]

    def norm(v):
        return round(v, 9) if isinstance(v, float) else v

    assert [norm(v) for v in vector] == [norm(v) for v in scalar]
    return vector


ROWS = [
    {"a": 3, "b": 1.5, "s": "xy", "d": datetime.date(1995, 1, 2), "f": True},
    {"a": None, "b": -2.0, "s": "zz", "d": datetime.date(1995, 1, 3), "f": False},
    {"a": 0, "b": None, "s": "a%b", "d": None, "f": None},
]


class TestArithmetic:
    def test_add_nulls_propagate(self):
        assert both_ways(col("a") + col("b"), ROWS) == [4.5, None, None]

    def test_division_always_float(self):
        values = both_ways(col("a") / lit(2), ROWS)
        assert values == [1.5, None, 0.0]

    def test_division_by_zero_is_null(self):
        assert both_ways(col("a") / lit(0), ROWS) == [None, None, None]

    def test_modulo(self):
        assert both_ways(BinaryOp("%", col("a"), lit(2)), ROWS) == [1, None, 0]

    def test_modulo_by_zero_is_null(self):
        assert both_ways(BinaryOp("%", col("a"), lit(0)), ROWS)[0] is None

    def test_unary_minus(self):
        assert both_ways(UnaryOp("-", col("b")), ROWS) == [-1.5, 2.0, None]

    def test_date_minus_int_is_date(self):
        expr = BinaryOp("-", col("d"), lit(1))
        assert infer_dtype(expr, SCHEMA) is DataType.DATE
        assert both_ways(expr, ROWS)[0] == datetime.date(1995, 1, 1)

    def test_date_minus_date_is_days(self):
        expr = BinaryOp("-", col("d"), col("d"))
        assert infer_dtype(expr, SCHEMA) is DataType.INT64
        assert both_ways(expr, ROWS)[0] == 0


class TestComparisons:
    def test_ordering(self):
        assert both_ways(BinaryOp("<", col("a"), lit(1)), ROWS) == [False, None, True]

    def test_string_equality(self):
        assert both_ways(BinaryOp("=", col("s"), lit("zz")), ROWS) == [
            False, True, False,
        ]

    def test_like(self):
        expr = BinaryOp("like", col("s"), lit("a%"))
        assert both_ways(expr, ROWS) == [False, False, True]

    def test_like_underscore(self):
        expr = BinaryOp("like", col("s"), lit("_y"))
        assert both_ways(expr, ROWS)[0] is True


class TestLogic:
    def test_kleene_and(self):
        # Row 3: f is NULL, IsNull(a)=FALSE -> NULL AND FALSE = FALSE.
        expr = BinaryOp("and", col("f"), IsNull(col("a")))
        assert both_ways(expr, ROWS) == [False, False, False]

    def test_kleene_and_null_survives(self):
        # TRUE AND NULL = NULL (row 1: f=TRUE, f2 references f of row 3).
        expr = BinaryOp("and", lit(True), col("f"))
        assert both_ways(expr, ROWS) == [True, False, None]

    def test_kleene_or(self):
        # Row 3: NULL OR FALSE = NULL; row 2: a IS NULL -> TRUE dominates.
        expr = BinaryOp("or", col("f"), IsNull(col("a")))
        assert both_ways(expr, ROWS) == [True, True, None]

    def test_not_propagates_null(self):
        assert both_ways(UnaryOp("not", col("f")), ROWS) == [False, True, None]


class TestConstructs:
    def test_is_null(self):
        assert both_ways(IsNull(col("a")), ROWS) == [False, True, False]
        assert both_ways(IsNull(col("a"), negated=True), ROWS) == [True, False, True]

    def test_in_list(self):
        expr = InList(col("a"), [lit(0), lit(3)])
        assert both_ways(expr, ROWS) == [True, None, True]

    def test_not_in_list(self):
        expr = InList(col("a"), [lit(0)], negated=True)
        assert both_ways(expr, ROWS) == [True, None, False]

    def test_case(self):
        expr = CaseExpr(
            [(BinaryOp(">", col("a"), lit(1)), lit("big"))], lit("small")
        )
        assert both_ways(expr, ROWS) == ["big", "small", "small"]

    def test_case_no_default_yields_null(self):
        expr = CaseExpr([(BinaryOp(">", col("a"), lit(100)), lit(1))], None)
        assert both_ways(expr, ROWS) == [None, None, None]

    def test_cast(self):
        expr = Cast(col("a"), DataType.FLOAT64)
        assert both_ways(expr, ROWS) == [3.0, None, 0.0]

    def test_nullif(self):
        expr = FuncCall("nullif", [col("a"), lit(0)])
        assert both_ways(expr, ROWS) == [3, None, None]

    def test_coalesce(self):
        expr = FuncCall("coalesce", [col("a"), lit(-1)])
        assert both_ways(expr, ROWS) == [3, -1, 0]

    def test_scalar_functions(self):
        assert both_ways(FuncCall("abs", [col("b")]), ROWS) == [1.5, 2.0, None]
        assert both_ways(FuncCall("power", [col("b"), lit(2)]), ROWS) == [
            2.25, 4.0, None,
        ]
        assert both_ways(FuncCall("length", [col("s")]), ROWS) == [2, 2, 3]
        assert both_ways(FuncCall("year", [col("d")]), ROWS) == [1995, 1995, None]

    def test_unknown_function(self):
        with pytest.raises(BindError):
            evaluate(FuncCall("frobnicate", [col("a")]), make_batch(ROWS))

    def test_arity_check(self):
        with pytest.raises(BindError):
            evaluate(FuncCall("abs", [col("a"), col("b")]), make_batch(ROWS))


class TestIntrospection:
    def test_columns_referenced(self):
        expr = CaseExpr(
            [(BinaryOp("=", col("a"), lit(1)), col("b"))], FuncCall("abs", [col("d")])
        )
        assert columns_referenced(expr) == {"a", "b", "d"}

    def test_infer_types(self):
        assert infer_dtype(col("a") + col("a"), SCHEMA) is DataType.INT64
        assert infer_dtype(col("a") + col("b"), SCHEMA) is DataType.FLOAT64
        assert infer_dtype(BinaryOp("=", col("a"), lit(1)), SCHEMA) is DataType.BOOL
        assert infer_dtype(FuncCall("sqrt", [col("a")]), SCHEMA) is DataType.FLOAT64

    def test_structural_equality(self):
        assert (col("a") + lit(1)) == (col("a") + lit(1))
        assert (col("a") + lit(1)) != (col("a") + lit(2))
        assert hash(col("x")) == hash(ColumnRef("X"))  # case-folded


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.one_of(st.integers(-100, 100), st.none()),
            st.one_of(
                st.floats(-100, 100, allow_nan=False, allow_infinity=False),
                st.none(),
            ),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_vector_scalar_agreement_property(pairs):
    """Property: both evaluators agree on a compound expression over random
    nullable data."""
    rows = [
        {"a": a, "b": b, "s": "t", "d": datetime.date(2000, 1, 1), "f": True}
        for a, b in pairs
    ]
    expr = FuncCall(
        "coalesce",
        [
            (col("a") + col("b")) / lit(3),
            FuncCall("abs", [col("b")]),
            Cast(col("a"), DataType.FLOAT64),
            lit(0.0),
        ],
    )
    both_ways(expr, rows)
