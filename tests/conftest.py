"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Every DAG the suite builds doubles as a zero-false-positive sweep for the
# static plan verifier: verify at translate time unless a test overrides
# the mode explicitly (EngineConfig reads this at construction).
os.environ.setdefault("REPRO_VERIFY_PLANS", "on")

from repro import Database, EngineConfig
from repro.tpch import populate_database

from tests.helpers import ENGINES, assert_engines_agree, normalized_rows  # noqa: F401


@pytest.fixture
def db():
    """A small mixed-type table with NULLs, shared by many tests."""
    database = Database(num_threads=2)
    database.create_table(
        "r",
        {
            "k": "int64",
            "n": "int64",
            "q": "float64",
            "e": "float64",
            "d": "date",
            "s": "string",
            "b": "bool",
        },
    )
    rng = np.random.default_rng(7)
    size = 500
    import datetime

    days = rng.integers(0, 1000, size)
    database.insert(
        "r",
        {
            "k": [int(v) for v in rng.integers(0, 6, size)],
            "n": [int(v) if v else None for v in rng.integers(0, 4, size)],
            "q": [round(float(v), 3) for v in rng.random(size)],
            "e": [
                round(float(v) * 100, 2) if i % 17 else None
                for i, v in enumerate(rng.random(size))
            ],
            "d": [datetime.date(1992, 1, 1) + datetime.timedelta(days=int(x)) for x in days],
            "s": [["red", "green", "blue", "cyan"][v] for v in rng.integers(0, 4, size)],
            "b": [bool(v) for v in rng.integers(0, 2, size)],
        },
    )
    return database


@pytest.fixture(scope="session")
def tpch_db():
    """Session-scoped tiny TPC-H database."""
    database = Database(num_threads=2)
    populate_database(database, scale_factor=0.004, seed=11)
    return database
