"""Direct unit tests of logical plan nodes (schema propagation, labels,
validation) and a property test of the MERGE operator's two-way merge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import AggregateCall, WindowCall
from repro.errors import PlanError
from repro.expr.nodes import BinaryOp, ColumnRef, Literal
from repro.logical import (
    Aggregate,
    Filter,
    Join,
    JoinKind,
    Limit,
    Project,
    Scan,
    Sort,
    UnionAll,
    Window,
    explain_plan,
)
from repro.lolepop.merge_op import merge_two_sorted
from repro.storage import Batch
from repro.types import DataType, Schema

LEFT = Schema.of(("a", "int64"), ("b", "string"))
RIGHT = Schema.of(("a", "int64"), ("c", "float64"))


def scan(name="t", schema=LEFT):
    return Scan(name, schema)


class TestSchemaPropagation:
    def test_filter_keeps_schema(self):
        plan = Filter(scan(), BinaryOp(">", ColumnRef("a"), Literal(0, DataType.INT64)))
        assert plan.schema == LEFT

    def test_project_infers_types(self):
        plan = Project(scan(), [("twice", ColumnRef("a") + ColumnRef("a"))])
        assert plan.schema["twice"].dtype is DataType.INT64

    def test_inner_join_concats_and_renames(self):
        plan = Join(scan(), scan("u", RIGHT), JoinKind.INNER, ["a"], ["a"])
        assert plan.schema.names() == ["a", "b", "a_1", "c"]

    def test_semi_join_keeps_left_schema(self):
        plan = Join(scan(), scan("u", RIGHT), JoinKind.SEMI, ["a"], ["a"])
        assert plan.schema == LEFT

    def test_join_key_arity_checked(self):
        with pytest.raises(PlanError):
            Join(scan(), scan("u", RIGHT), JoinKind.INNER, ["a"], ["a", "c"])

    def test_aggregate_output_schema(self):
        agg = Aggregate(
            scan(), ["b"], [AggregateCall("total", "count", [ColumnRef("a")])]
        )
        assert agg.schema.names() == ["b", "total"]
        assert agg.schema["total"].dtype is DataType.INT64

    def test_grouping_sets_add_grouping_id(self):
        agg = Aggregate(
            scan(), ["a", "b"],
            [AggregateCall("n", "count_star", [])],
            grouping_sets=[("a", "b"), ("a",)],
        )
        assert agg.schema.names()[-1] == "grouping_id"
        assert agg.grouping_id_of(("a", "b")) == 0
        assert agg.grouping_id_of(("a",)) == 1
        assert agg.grouping_id_of(()) == 3

    def test_grouping_set_keys_validated(self):
        with pytest.raises(PlanError):
            Aggregate(
                scan(), ["a"], [], grouping_sets=[("zz",)]
            )

    def test_window_appends_columns(self):
        call = WindowCall(
            "rn", "row_number", [], partition_by=[ColumnRef("b")],
            order_by=[(ColumnRef("a"), False)],
        )
        plan = Window(scan(), [call])
        assert plan.schema.names() == ["a", "b", "rn"]

    def test_sort_validates_keys(self):
        import pytest as _pytest

        with _pytest.raises(Exception):
            Sort(scan(), [("zz", False)])

    def test_union_all_type_check(self):
        with pytest.raises(PlanError):
            UnionAll([scan(), scan("u", RIGHT)])

    def test_union_all_requires_children(self):
        with pytest.raises(PlanError):
            UnionAll([])


class TestLabels:
    def test_explain_tree_shape(self):
        inner = Join(scan(), scan("u", RIGHT), JoinKind.INNER, ["a"], ["a"])
        plan = Limit(
            Sort(
                Project(inner, [("a", ColumnRef("a"))]),
                [("a", True)],
            ),
            5, 2,
        )
        text = explain_plan(plan)
        assert "LIMIT 5 OFFSET 2" in text
        assert "SORT BY a DESC" in text
        assert "INNER JOIN ON a=a" in text
        assert text.count("SCAN") == 2

    def test_aggregate_label_shows_sets(self):
        agg = Aggregate(
            scan(), ["a"], [], grouping_sets=[("a",), ()]
        )
        assert "GROUPING SETS" in agg.label()


MERGE_SCHEMA = Schema.of(("k", "int64"), ("tag", "string"))


def sorted_batch(values, tag):
    ordered = sorted(values)
    return Batch.from_pydict(
        MERGE_SCHEMA,
        {"k": ordered, "tag": [f"{tag}{i}" for i in range(len(ordered))]},
    )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(-20, 20), max_size=30),
    st.lists(st.integers(-20, 20), max_size=30),
)
def test_merge_two_sorted_property(left_values, right_values):
    """Property: the two-way merge equals sorting the concatenation, and is
    stable (left rows before equal right rows)."""
    left = sorted_batch(left_values, "L")
    right = sorted_batch(right_values, "R")
    merged = merge_two_sorted(left, right, [("k", False)])
    keys = [k for k, _ in merged.rows()]
    assert keys == sorted(left_values + right_values)
    # Stability: among equal keys, L-tags precede R-tags.
    for key in set(left_values) & set(right_values):
        tags = [tag for k, tag in merged.rows() if k == key]
        first_r = next((i for i, t in enumerate(tags) if t.startswith("R")), len(tags))
        assert all(t.startswith("R") for t in tags[first_r:])


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(-20, 20), max_size=25),
    st.lists(st.integers(-20, 20), max_size=25),
)
def test_merge_descending_property(left_values, right_values):
    left = Batch.from_pydict(
        MERGE_SCHEMA,
        {
            "k": sorted(left_values, reverse=True),
            "tag": ["L"] * len(left_values),
        },
    )
    right = Batch.from_pydict(
        MERGE_SCHEMA,
        {
            "k": sorted(right_values, reverse=True),
            "tag": ["R"] * len(right_values),
        },
    )
    merged = merge_two_sorted(left, right, [("k", True)])
    keys = [k for k, _ in merged.rows()]
    assert keys == sorted(left_values + right_values, reverse=True)
