"""Direct tests of the compute LOLEPOPs (HASHAGG / ORDAGG / WINDOW)."""

import pytest

from repro.aggregates import FrameBound, FrameSpec, WindowCall
from repro.execution import EngineConfig, ExecutionContext
from repro.expr.nodes import ColumnRef
from repro.lolepop import HashAggOp, OrdAggOp, SourceOp, WindowOp
from repro.lolepop.hashagg_op import HashAggTask
from repro.lolepop.ordagg_op import OrdAggTask
from repro.storage import Batch, TupleBuffer
from repro.types import Schema

SCHEMA = Schema.of(("k", "int64"), ("v", "int64"))


def ctx(**kw):
    return ExecutionContext(EngineConfig(num_threads=2, num_partitions=4, **kw))


def make_batch(ks, vs):
    return Batch.from_pydict(SCHEMA, {"k": ks, "v": vs})


class TestHashAggOp:
    def run_agg(self, batches, keys, tasks, **kw):
        c = ctx(**kw)
        op = HashAggOp(SourceOp(lambda: batches), keys, tasks, num_partitions=4)
        out = op.execute(c, [batches])
        return sorted(Batch.concat(out).rows())

    def test_grouped_sum(self):
        rows = self.run_agg(
            [make_batch([1, 2, 1], [10, 20, 30]), make_batch([2], [5])],
            ["k"],
            [HashAggTask("s", "sum", "v")],
        )
        assert rows == [(1, 40), (2, 25)]

    def test_single_phase_matches_two_phase(self):
        batches = [make_batch([1, 2, 1], [10, 20, 30]), make_batch([2, 3], [5, 7])]
        tasks = [HashAggTask("s", "sum", "v"), HashAggTask("c", "count_star", None)]
        two = self.run_agg(batches, ["k"], tasks)
        one = self.run_agg(batches, ["k"], tasks, two_phase_hashagg=False)
        assert two == one

    def test_global_aggregate_empty_input(self):
        rows = self.run_agg(
            [Batch.empty(SCHEMA)], [],
            [HashAggTask("c", "count_star", None), HashAggTask("s", "sum", "v")],
        )
        assert rows == [(0, None)]

    def test_keys_only_distinct(self):
        rows = self.run_agg(
            [make_batch([1, 1, 2], [7, 7, 8])], ["k", "v"], []
        )
        assert rows == [(1, 7), (2, 8)]

    def test_merge_func_mapping(self):
        assert HashAggTask("x", "count", "v").merge_func == "sum"
        assert HashAggTask("x", "min", "v").merge_func == "min"


class TestOrdAggOp:
    def sorted_buffer(self, ks, vs, keys=("k", "v")):
        buffer = TupleBuffer(SCHEMA, 2, ("k",))
        buffer.append_partitioned(make_batch(ks, vs))
        for partition in buffer.partitions:
            partition.sort_inplace(list(keys), [False] * len(keys))
        buffer.set_ordering(tuple((k, False) for k in keys))
        return buffer

    def run_agg(self, buffer, keys, tasks):
        c = ctx()
        op = OrdAggOp(SourceOp(lambda: []), list(keys), tasks)
        out = op.execute(c, [buffer])
        return sorted(Batch.concat(out).rows())

    def test_associative_on_ranges(self):
        buffer = self.sorted_buffer([1, 1, 2, 2, 2], [5, 3, 2, 8, 4])
        rows = self.run_agg(
            buffer, ["k"],
            [OrdAggTask("s", "sum", "v"), OrdAggTask("c", "count", "v")],
        )
        assert rows == [(1, 8, 2), (2, 14, 3)]

    def test_percentile_disc_positions(self):
        buffer = self.sorted_buffer([1, 1, 1, 1], [10, 20, 30, 40])
        rows = self.run_agg(
            buffer, ["k"],
            [OrdAggTask("p", "percentile_disc", "v", 0.5)],
        )
        assert rows == [(1, 20)]

    def test_percentile_cont_interpolation(self):
        buffer = self.sorted_buffer([1, 1], [10, 20])
        rows = self.run_agg(
            buffer, ["k"], [OrdAggTask("p", "percentile_cont", "v", 0.5)]
        )
        assert rows == [(1, 15.0)]

    def test_distinct_dedup_on_sorted_range(self):
        buffer = self.sorted_buffer([1, 1, 1, 2], [7, 7, 9, 7])
        rows = self.run_agg(
            buffer, ["k"],
            [
                OrdAggTask("sd", "sum", "v", distinct=True),
                OrdAggTask("cd", "count", "v", distinct=True),
            ],
        )
        assert rows == [(1, 16, 2), (2, 7, 1)]

    def test_empty_buffer(self):
        buffer = TupleBuffer(SCHEMA, 2, ("k",))
        rows = self.run_agg(buffer, ["k"], [OrdAggTask("s", "sum", "v")])
        assert rows == []


class TestWindowOp:
    def sorted_buffer(self, ks, vs):
        buffer = TupleBuffer(SCHEMA, 2, ("k",))
        buffer.append_partitioned(make_batch(ks, vs))
        for partition in buffer.partitions:
            partition.sort_inplace(["k", "v"], [False, False])
        buffer.set_ordering((("k", False), ("v", False)))
        return buffer

    def run_window(self, buffer, calls, post_items=None):
        c = ctx()
        op = WindowOp(SourceOp(lambda: []), calls, post_items)
        return op.execute(c, [buffer])

    def call(self, func, **kw):
        defaults = dict(
            name="w",
            func=func,
            args=[ColumnRef("v")] if func not in ("row_number",) else [],
            partition_by=[ColumnRef("k")],
            order_by=[(ColumnRef("v"), False)],
        )
        defaults.update(kw)
        return WindowCall(**defaults)

    def rows_by_key(self, buffer):
        out = {}
        for batch in buffer.partition_batches():
            for row in batch.rows():
                out.setdefault(row[0], []).append(row)
        return out

    def test_row_number(self):
        buffer = self.sorted_buffer([1, 1, 2], [5, 3, 9])
        out = self.run_window(buffer, [self.call("row_number")])
        by_key = self.rows_by_key(out)
        assert [r[2] for r in by_key[1]] == [1, 2]
        assert [r[2] for r in by_key[2]] == [1]

    def test_running_sum(self):
        buffer = self.sorted_buffer([1, 1, 1], [1, 2, 3])
        out = self.run_window(
            buffer, [self.call("sum", frame=FrameSpec.running())]
        )
        assert [r[2] for r in self.rows_by_key(out)[1]] == [1, 3, 6]

    def test_bounded_rows_frame(self):
        buffer = self.sorted_buffer([1] * 5, [1, 2, 3, 4, 5])
        frame = FrameSpec(FrameBound.PRECEDING, 1, FrameBound.FOLLOWING, 1)
        out = self.run_window(buffer, [self.call("sum", frame=frame)])
        assert [r[2] for r in self.rows_by_key(out)[1]] == [3, 6, 9, 12, 9]

    def test_lag_lead_defaults(self):
        buffer = self.sorted_buffer([1, 1, 1], [1, 2, 3])
        out = self.run_window(buffer, [self.call("lead", offset=1)])
        assert [r[2] for r in self.rows_by_key(out)[1]] == [2, 3, None]

    def test_whole_partition_percentile_broadcast(self):
        buffer = self.sorted_buffer([1, 1, 1, 1], [10, 20, 30, 40])
        out = self.run_window(
            buffer,
            [self.call("percentile_disc", fraction=0.5,
                       frame=FrameSpec.whole_partition(), order_by=[])],
        )
        assert [r[2] for r in self.rows_by_key(out)[1]] == [20, 20, 20, 20]

    def test_post_items_materialized_into_buffer(self):
        buffer = self.sorted_buffer([1, 1], [3, 5])
        out = self.run_window(
            buffer,
            [self.call("sum", frame=FrameSpec.whole_partition())],
            post_items=[("delta", ColumnRef("v") - ColumnRef("w"))],
        )
        assert "delta" in out.schema.names()
        assert [r[3] for r in self.rows_by_key(out)[1]] == [-5, -3]

    def test_mixed_orderings_rejected(self):
        with pytest.raises(Exception):
            WindowOp(
                SourceOp(lambda: []),
                [
                    self.call("sum"),
                    self.call("sum", order_by=[(ColumnRef("k"), False)]),
                ],
            )
