"""Differential tests for parallel execution mode.

Every query of the fixed differential corpus (and a TPC-H subset, and the
grouping-sets / window shapes) must produce the same rows under
``execution_mode="parallel"`` at 2, 4, and 8 threads as the serial LOLEPOP
engine and the naive row-engine baseline. Reference answers are computed
once per query and cached, so each extra thread count only pays for the
parallel run itself.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig
from repro.tpch.queries import TPCH_QUERIES

from tests.helpers import normalized_rows
from tests.test_engine_differential import FIXED_QUERIES

THREAD_COUNTS = [2, 4, 8]

#: sql -> (naive_reference, serial_lolepop_rows); filled lazily per query.
_REFERENCE_CACHE = {}


def _references(db, sql, **config_kwargs):
    key = (id(db), sql, tuple(sorted(config_kwargs.items())))
    if key not in _REFERENCE_CACHE:
        naive = normalized_rows(db.sql(sql, engine="naive"))
        serial = normalized_rows(
            db.sql(
                sql,
                config=EngineConfig(num_threads=1, **config_kwargs),
            )
        )
        _REFERENCE_CACHE[key] = (naive, serial)
    return _REFERENCE_CACHE[key]


def _assert_parallel_agrees(db, sql, threads, **config_kwargs):
    naive, serial = _references(db, sql, **config_kwargs)
    config = EngineConfig(
        num_threads=threads, execution_mode="parallel", **config_kwargs
    )
    got = normalized_rows(db.sql(sql, config=config))
    assert got == serial, (
        f"parallel@{threads}T diverges from serial lolepop on: {sql}"
    )
    assert got == naive, f"parallel@{threads}T diverges from naive on: {sql}"


@pytest.mark.parametrize("threads", THREAD_COUNTS)
@pytest.mark.parametrize("sql", FIXED_QUERIES, ids=range(len(FIXED_QUERIES)))
def test_parallel_matches_serial_on_fixed_corpus(db, sql, threads):
    _assert_parallel_agrees(db, sql, threads, num_partitions=8)


# ----------------------------------------------------------------------
# Grouping sets and window shapes at higher partition counts (exercises
# the keyed-partition scatter and per-partition sort-split paths harder).
# ----------------------------------------------------------------------
STRESS_QUERIES = [
    "SELECT k, n, sum(q), count(*) FROM r GROUP BY GROUPING SETS ((k, n), (k), ())",
    "SELECT k, n, median(q) FROM r GROUP BY CUBE (k, n)",
    "SELECT k, q, sum(q) OVER (PARTITION BY k ORDER BY q, e, d) AS cs, "
    "row_number() OVER (PARTITION BY k ORDER BY q, e, d) AS rn FROM r",
    "SELECT k, ntile(4) OVER (PARTITION BY k ORDER BY q, e, d) AS nt FROM r",
    "SELECT k, sum(q) AS s, percentile_disc(0.5) WITHIN GROUP (ORDER BY q) AS p "
    "FROM r GROUP BY k ORDER BY s DESC",
]


@pytest.mark.parametrize("threads", THREAD_COUNTS)
@pytest.mark.parametrize("sql", STRESS_QUERIES, ids=range(len(STRESS_QUERIES)))
def test_parallel_matches_serial_on_stress_shapes(db, sql, threads):
    _assert_parallel_agrees(db, sql, threads, num_partitions=16)


# ----------------------------------------------------------------------
# TPC-H subset (multi-table plans: joins feeding statistics regions).
# ----------------------------------------------------------------------
TPCH_SUBSET = ["q1", "q6", "q4", "q12"]


@pytest.mark.parametrize("threads", THREAD_COUNTS)
@pytest.mark.parametrize("name", TPCH_SUBSET)
def test_parallel_matches_serial_on_tpch(tpch_db, name, threads):
    _assert_parallel_agrees(tpch_db, TPCH_QUERIES[name], threads)


# ----------------------------------------------------------------------
# Parallel mode composes with the other config knobs.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "config_kwargs",
    [
        {"num_partitions": 2},
        {"morsel_size": 64},
        {"two_phase_hashagg": False},
        {"permutation_vectors": False},
        {"elide_sorts": False},
    ],
    ids=lambda kw: next(iter(kw.items()))[0],
)
def test_parallel_respects_config_knobs(db, config_kwargs):
    sql = (
        "SELECT k, sum(q), count(DISTINCT n), median(e) FROM r "
        "GROUP BY k ORDER BY k"
    )
    _assert_parallel_agrees(db, sql, 4, **config_kwargs)
