"""Tests for GROUPING(), percent_rank, and EXPLAIN statements."""

import pytest

from repro import Database
from repro.errors import BindError

from tests.helpers import assert_engines_agree


@pytest.fixture
def db():
    database = Database(num_threads=2)
    database.create_table("t", {"a": "int64", "b": "int64", "x": "int64"})
    database.insert(
        "t",
        {
            "a": [1, 1, 2, 2, 2],
            "b": [10, 20, 10, 10, 30],
            "x": [1, 2, 3, 4, 5],
        },
    )
    return database


class TestGroupingFunction:
    def test_marks_aggregated_keys(self, db):
        rows = db.sql(
            "SELECT a, b, sum(x), grouping(a) AS ga, grouping(b) AS gb "
            "FROM t GROUP BY GROUPING SETS ((a, b), (a), ())"
        ).rows()
        for a, b, _, ga, gb in rows:
            assert ga == (1 if a is None else 0)
            assert gb == (1 if b is None else 0)

    def test_rollup(self, db):
        rows = db.sql(
            "SELECT a, grouping(a) AS ga, count(*) FROM t GROUP BY ROLLUP (a)"
        ).rows()
        totals = [r for r in rows if r[1] == 1]
        assert len(totals) == 1 and totals[0][2] == 5

    def test_engines_agree(self, db):
        assert_engines_agree(
            db,
            "SELECT a, b, sum(x), grouping(a) AS ga, grouping(b) AS gb "
            "FROM t GROUP BY GROUPING SETS ((a, b), (b))",
        )

    def test_requires_grouping_sets(self, db):
        with pytest.raises(BindError):
            db.plan("SELECT a, grouping(a) FROM t GROUP BY a")

    def test_argument_must_be_key(self, db):
        with pytest.raises(BindError):
            db.plan(
                "SELECT a, grouping(x) FROM t GROUP BY GROUPING SETS ((a), ())"
            )


class TestPercentRank:
    def test_values(self, db):
        rows = db.sql(
            "SELECT a, x, percent_rank() OVER (PARTITION BY a ORDER BY x) AS pr "
            "FROM t"
        ).rows()
        by_a = {}
        for a, x, pr in sorted(rows):
            by_a.setdefault(a, []).append(pr)
        assert by_a[1] == [0.0, 1.0]
        assert by_a[2] == [0.0, 0.5, 1.0]

    def test_single_row_partition_is_zero(self):
        db = Database()
        db.create_table("s", {"x": "int64"})
        db.insert("s", {"x": [42]})
        rows = db.sql(
            "SELECT percent_rank() OVER (ORDER BY x) AS pr FROM s"
        ).rows()
        assert rows == [(0.0,)]

    def test_ties_share_rank(self, db):
        rows = db.sql(
            "SELECT b, percent_rank() OVER (ORDER BY b) AS pr FROM t"
        ).rows()
        tens = {pr for b, pr in rows if b == 10}
        assert tens == {0.0}

    def test_engines_agree(self, db):
        assert_engines_agree(
            db,
            "SELECT a, x, percent_rank() OVER (PARTITION BY a ORDER BY b, x) AS pr "
            "FROM t",
        )


class TestExplainStatement:
    def test_explain_logical(self, db):
        result = db.sql("EXPLAIN SELECT a, sum(x) FROM t GROUP BY a")
        text = "\n".join(r[0] for r in result.rows())
        assert "AGGREGATE" in text and "SCAN t" in text

    def test_explain_lolepop(self, db):
        result = db.sql("EXPLAIN LOLEPOP SELECT a, median(x) FROM t GROUP BY a")
        text = "\n".join(r[0] for r in result.rows())
        assert "ORDAGG" in text

    def test_explain_in_shell(self):
        import io

        from repro.shell import Shell

        out = io.StringIO()
        shell = Shell(out=out)
        shell.db.create_table("t", {"a": "int64"})
        shell.execute_line("EXPLAIN SELECT a FROM t")
        assert "SCAN t" in out.getvalue()
