"""Unit tests for the real-thread ParallelScheduler.

Locks down the execution contract documented in repro.execution.parallel:
region barriers hold, worker exceptions propagate with the worker's
traceback, splittable items are subdivided into at most num_threads
sub-thunks, and a single-thread pool reproduces serial results bit-for-bit.
"""

from __future__ import annotations

import threading
import time
import traceback

import pytest

from repro import Database, EngineConfig
from repro.execution import (
    EXECUTION_MODES,
    ExecutionTrace,
    ParallelScheduler,
    SimulatedScheduler,
    SplittableTask,
)


# ----------------------------------------------------------------------
# Basic API behavior
# ----------------------------------------------------------------------
def test_results_come_back_in_item_order():
    sched = ParallelScheduler(4)
    items = list(range(32))
    # Make later items finish first to prove ordering is by item, not
    # by completion.
    out = sched.run_region(
        "op", "p0", items, lambda i: (time.sleep((31 - i) * 1e-4), i * i)[1]
    )
    assert out == [i * i for i in items]


def test_empty_region_is_a_noop():
    sched = ParallelScheduler(3)
    assert sched.run_region("op", "p0", [], lambda i: i) == []
    assert sched.sim_time == 0.0
    assert sched.serial_time == 0.0


def test_invalid_thread_count_rejected():
    with pytest.raises(ValueError):
        ParallelScheduler(0)


def test_invalid_execution_mode_rejected():
    assert set(EXECUTION_MODES) == {"simulated", "parallel"}
    with pytest.raises(ValueError):
        EngineConfig(execution_mode="warp-speed")


# ----------------------------------------------------------------------
# Barrier semantics
# ----------------------------------------------------------------------
def test_region_barrier_holds_between_regions():
    """No work item of region 2 may start before every item of region 1
    has finished, even when region 1's items take uneven time."""
    sched = ParallelScheduler(4)
    events = []
    lock = threading.Lock()

    def slow(i):
        time.sleep(0.002 * (i + 1))
        with lock:
            events.append(("r1", i, time.perf_counter()))
        return i

    def fast(i):
        with lock:
            events.append(("r2", i, time.perf_counter()))
        return i

    sched.run_region("op", "p0", range(6), slow)
    sched.run_region("op", "p1", range(6), fast)

    last_r1 = max(t for tag, _, t in events if tag == "r1")
    first_r2 = min(t for tag, _, t in events if tag == "r2")
    assert last_r1 <= first_r2


def test_barrier_waits_for_all_items_even_after_a_failure():
    """A failing item must not let its siblings leak into the next region:
    the scheduler drains every future before re-raising."""
    sched = ParallelScheduler(4)
    finished = []

    def work(i):
        if i == 0:
            raise RuntimeError("boom")
        time.sleep(0.005)
        finished.append(i)
        return i

    with pytest.raises(RuntimeError):
        sched.run_region("op", "p0", range(5), work)
    # All non-failing items completed before run_region returned.
    assert sorted(finished) == [1, 2, 3, 4]


# ----------------------------------------------------------------------
# Exception propagation
# ----------------------------------------------------------------------
def _exploding_worker(item):
    if item == 3:
        raise ValueError(f"worker failed on item {item!r}")
    return item


def test_worker_exception_propagates_with_original_traceback():
    sched = ParallelScheduler(2)
    with pytest.raises(ValueError, match="worker failed on item 3") as info:
        sched.run_region("op", "p0", [1, 2, 3], _exploding_worker)
    # The traceback must reach into the worker function's own frame, not
    # stop at the future.result() call on the submitting thread.
    rendered = "".join(
        traceback.format_exception(info.type, info.value, info.tb)
    )
    assert "_exploding_worker" in rendered
    assert "worker failed on item 3" in rendered


def test_first_failing_item_wins_when_several_fail():
    sched = ParallelScheduler(2)

    def work(i):
        raise KeyError(i)

    with pytest.raises(KeyError) as info:
        sched.run_region("op", "p0", [7, 8, 9], work)
    assert info.value.args[0] == 7


# ----------------------------------------------------------------------
# Splittable items
# ----------------------------------------------------------------------
class RecordingTask(SplittableTask):
    """Sums a list of ints; splits into chunked sub-sums on request."""

    def __init__(self, values, refuse_split=False):
        self.values = list(values)
        self.refuse_split = refuse_split
        self.split_requests = []
        self.finalized_with = None
        self.ran_whole = False

    def run(self):
        self.ran_whole = True
        return sum(self.values)

    def split(self, max_parts):
        self.split_requests.append(max_parts)
        if self.refuse_split or max_parts < 2:
            return None
        step = -(-len(self.values) // max_parts)
        chunks = [
            self.values[i : i + step]
            for i in range(0, len(self.values), step)
        ]

        def make(chunk):
            return lambda: sum(chunk)

        return [make(c) for c in chunks]

    def finalize(self, sub_results):
        self.finalized_with = list(sub_results)
        return sum(sub_results)


def test_splittable_item_produces_at_most_num_threads_subitems():
    for threads in (2, 3, 4, 8):
        sched = ParallelScheduler(threads)
        task = RecordingTask(range(100))
        (result,) = sched.run_region(
            "sort", "p0", [task], RecordingTask.run, splittable=True
        )
        assert result == sum(range(100))
        assert task.split_requests, "split() was never consulted"
        assert all(parts <= threads for parts in task.split_requests)
        assert task.finalized_with is not None
        assert len(task.finalized_with) <= threads
        assert not task.ran_whole


def test_splittable_item_that_declines_runs_whole():
    sched = ParallelScheduler(4)
    task = RecordingTask(range(50), refuse_split=True)
    (result,) = sched.run_region(
        "sort", "p0", [task], RecordingTask.run, splittable=True
    )
    assert result == sum(range(50))
    assert task.ran_whole
    assert task.finalized_with is None


def test_no_split_when_items_already_cover_the_threads():
    """With at least as many items as threads there is nothing to gain
    from splitting, so split() must not be consulted."""
    sched = ParallelScheduler(2)
    tasks = [RecordingTask(range(10)) for _ in range(4)]
    results = sched.run_region(
        "sort", "p0", tasks, RecordingTask.run, splittable=True
    )
    assert results == [sum(range(10))] * 4
    assert all(t.split_requests == [] for t in tasks)
    assert all(t.ran_whole for t in tasks)


def test_no_split_on_single_thread():
    sched = ParallelScheduler(1)
    task = RecordingTask(range(10))
    sched.run_region("sort", "p0", [task], RecordingTask.run, splittable=True)
    assert task.split_requests == []
    assert task.ran_whole


def test_mixed_region_split_and_whole_results_stay_ordered():
    sched = ParallelScheduler(8)
    tasks = [
        RecordingTask(range(20)),
        RecordingTask(range(5), refuse_split=True),
        RecordingTask(range(30)),
    ]
    results = sched.run_region(
        "sort", "p0", tasks, RecordingTask.run, splittable=True
    )
    assert results == [sum(range(20)), sum(range(5)), sum(range(30))]


# ----------------------------------------------------------------------
# Timing, tracing, account()
# ----------------------------------------------------------------------
def test_serial_time_and_wall_time_accumulate():
    sched = ParallelScheduler(2)
    sched.run_region("op", "p0", range(4), lambda i: time.sleep(0.002))
    assert sched.serial_time > 0.0
    assert sched.sim_time > 0.0
    assert sched.wall_time == sched.sim_time
    before = sched.sim_time
    sched.run_region("op", "p1", range(2), lambda i: i)
    assert sched.sim_time > before


def test_trace_records_use_rebased_abutting_regions():
    trace = ExecutionTrace()
    sched = ParallelScheduler(2, trace)
    sched.run_region("a", "p0", range(3), lambda i: time.sleep(0.001))
    first_region_end = sched.sim_time
    sched.run_region("b", "p1", range(3), lambda i: time.sleep(0.001))
    assert len(trace.records) == 6
    ops_a = [r for r in trace.records if r.operator == "a"]
    ops_b = [r for r in trace.records if r.operator == "b"]
    # Region b's records start at or after region a's span ended.
    assert min(r.start for r in ops_b) >= first_region_end - 1e-9
    assert all(r.end >= r.start for r in trace.records)
    # Worker ids are dense indices, not OS thread idents.
    assert {r.thread for r in trace.records} <= set(range(sched.num_threads))


def test_account_matches_simulated_scheduler_semantics():
    par, sim = ParallelScheduler(3), SimulatedScheduler(3)
    durations = [0.25, 0.5, 0.125]
    par.account("scan", "p0", durations)
    sim.account("scan", "p0", durations)
    assert par.serial_time == pytest.approx(sim.serial_time)
    # account() replays serially in both modes (externally measured work).
    assert par.sim_time == pytest.approx(sum(durations))


def test_reset_clears_all_per_query_state():
    trace = ExecutionTrace()
    sched = ParallelScheduler(2, trace)
    sched.run_region("op", "p0", range(4), lambda i: i)
    sched.reset()
    assert sched.sim_time == 0.0
    assert sched.serial_time == 0.0
    assert trace.records == []


# ----------------------------------------------------------------------
# num_threads=1 parity with the serial engine
# ----------------------------------------------------------------------
def _parity_db():
    db = Database()
    db.create_table("t", {"g": "int64", "x": "float64", "s": "string"})
    import numpy as np

    rng = np.random.default_rng(21)
    n = 400
    db.insert(
        "t",
        {
            "g": [int(v) for v in rng.integers(0, 7, n)],
            "x": [float(v) if i % 11 else None for i, v in enumerate(rng.random(n))],
            "s": [["a", "bb", "ccc"][v] for v in rng.integers(0, 3, n)],
        },
    )
    return db


PARITY_QUERIES = [
    "SELECT g, sum(x), count(*), median(x) FROM t GROUP BY g",
    "SELECT g, count(DISTINCT s) FROM t GROUP BY g",
    "SELECT g, x, row_number() OVER (PARTITION BY g ORDER BY x, s) AS rn FROM t",
    "SELECT s, x FROM t ORDER BY x DESC, s LIMIT 17",
    "SELECT g, s, sum(x) FROM t GROUP BY ROLLUP (g, s)",
]


@pytest.mark.parametrize("sql", PARITY_QUERIES)
def test_one_thread_parallel_matches_serial_bit_for_bit(sql):
    db = _parity_db()
    serial = db.sql(
        sql, config=EngineConfig(num_threads=1, execution_mode="simulated")
    )
    parallel = db.sql(
        sql, config=EngineConfig(num_threads=1, execution_mode="parallel")
    )
    # Bit-for-bit: same rows in the same order, no normalization.
    assert parallel.rows() == serial.rows()
    assert parallel.schema.names() == serial.schema.names()
