"""Property-based stress tests for parallel-mode determinism.

Generates ~50 random aggregate/window plans over random data with a seeded
``random.Random`` (no external property-testing dependency), runs each
three times under ``execution_mode="parallel"``, and asserts run-to-run
determinism: identical rows in identical order every time. Each plan is
also checked against the naive row engine so determinism never hides a
wrong-but-stable answer.
"""

from __future__ import annotations

import random

import pytest

from repro import Database, EngineConfig

from tests.helpers import normalized_rows

N_PLANS = 50
N_RUNS = 3
SEED = 2026


def _make_db(rng: random.Random, reuse=None) -> Database:
    # The plan cache is left on; distinct random plans re-translate anyway,
    # which is what lets the reuse sweep below consult the manager.
    db = Database(reuse=reuse)
    db.create_table(
        "t", {"g": "int64", "h": "int64", "x": "float64", "y": "float64"}
    )
    n = rng.randint(120, 220)
    db.insert(
        "t",
        {
            "g": [rng.randint(0, 5) for _ in range(n)],
            "h": [rng.randint(0, 3) for _ in range(n)],
            "x": [
                round(rng.random() * 100, 3) if rng.random() > 0.08 else None
                for _ in range(n)
            ],
            "y": [round(rng.gauss(0, 10), 3) for _ in range(n)],
        },
    )
    return db


_AGGS = [
    "sum({v})",
    "count(*)",
    "count({v})",
    "min({v})",
    "max({v})",
    "avg({v})",
    "median({v})",
    "count(DISTINCT {v})",
    "sum(DISTINCT {v})",
    "percentile_disc(0.5) WITHIN GROUP (ORDER BY {v})",
    "percentile_cont(0.25) WITHIN GROUP (ORDER BY {v})",
    "var_samp({v})",
    "stddev_pop({v})",
]

#: Deterministic window calls: the full ORDER BY g, h, x, y, rn-free
#: ordering below makes every function's answer unique.
_WINS = [
    "row_number() OVER (PARTITION BY {p} ORDER BY {o})",
    "rank() OVER (PARTITION BY {p} ORDER BY {o})",
    "dense_rank() OVER (PARTITION BY {p} ORDER BY {o})",
    "sum({v}) OVER (PARTITION BY {p} ORDER BY {o})",
    "min({v}) OVER (PARTITION BY {p} ORDER BY {o} "
    "ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING)",
    "lag({v}) OVER (PARTITION BY {p} ORDER BY {o})",
    "lead({v}, 2) OVER (PARTITION BY {p} ORDER BY {o})",
    "first_value({v}) OVER (PARTITION BY {p} ORDER BY {o})",
    "ntile(3) OVER (PARTITION BY {p} ORDER BY {o})",
    "cume_dist() OVER (PARTITION BY {p} ORDER BY {o})",
    "percent_rank() OVER (PARTITION BY {p} ORDER BY {o})",
    "nth_value({v}, 2) OVER (PARTITION BY {p} ORDER BY {o})",
    "max({v}) OVER (PARTITION BY {p} ORDER BY {o} "
    "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW)",
    "avg({v}) OVER (PARTITION BY {p} ORDER BY {o} "
    "ROWS BETWEEN 3 PRECEDING AND CURRENT ROW)",
]

#: Grouping-set lattice shapes over two keys ({a}, {b}): explicit GROUPING
#: SETS lists, ROLLUP, and CUBE — the reaggregation pipelines the plan
#: verifier's zero-false-positive sweep must stay silent on.
_GROUPING_SHAPES = [
    "GROUPING SETS (({a}, {b}), ({a}))",
    "GROUPING SETS (({a}, {b}), ({a}), ({b}))",
    "GROUPING SETS (({a}, {b}), ({a}), ({b}), ())",
    "GROUPING SETS (({a}), ())",
    "ROLLUP ({a}, {b})",
    "CUBE ({a}, {b})",
]


def _random_aggregate(rng: random.Random) -> str:
    keys = rng.choice([["g"], ["h"], ["g", "h"], []])
    n_aggs = rng.randint(1, 4)
    aggs = [
        rng.choice(_AGGS).format(v=rng.choice(["x", "y"]))
        for _ in range(n_aggs)
    ]
    select = [*keys, *(f"{a} AS a{i}" for i, a in enumerate(aggs))]
    sql = f"SELECT {', '.join(select)} FROM t"
    if keys:
        sql += f" GROUP BY {', '.join(keys)}"
        if len(keys) == 2 and rng.random() < 0.45:
            shape = rng.choice(_GROUPING_SHAPES).format(a=keys[0], b=keys[1])
            sql = sql.replace(f"GROUP BY {', '.join(keys)}", f"GROUP BY {shape}")
        if rng.random() < 0.3:
            sql += " HAVING count(*) > 2"
        if rng.random() < 0.5:
            sql += f" ORDER BY {keys[0]}"
    return sql


def _random_window(rng: random.Random) -> str:
    part = rng.choice(["g", "h"])
    order = "x, y, g, h"  # total order over distinct-ish columns
    n_wins = rng.randint(1, 3)
    wins = [
        rng.choice(_WINS).format(p=part, v=rng.choice(["x", "y"]), o=order)
        for _ in range(n_wins)
    ]
    select = ["g", "h", "x", *(f"{w} AS w{i}" for i, w in enumerate(wins))]
    return f"SELECT {', '.join(select)} FROM t"


def _random_plan(rng: random.Random) -> str:
    return _random_window(rng) if rng.random() < 0.4 else _random_aggregate(rng)


def _plans():
    rng = random.Random(SEED)
    return [(i, _random_plan(rng)) for i in range(N_PLANS)]


@pytest.fixture(scope="module")
def prop_db():
    return _make_db(random.Random(SEED))


@pytest.mark.parametrize("case", _plans(), ids=lambda c: f"plan{c[0]}")
def test_parallel_runs_are_deterministic(prop_db, case):
    _, sql = case
    config = EngineConfig(
        num_threads=4, num_partitions=8, execution_mode="parallel"
    )
    runs = [prop_db.sql(sql, config=config).rows() for _ in range(N_RUNS)]
    for i, rows in enumerate(runs[1:], start=2):
        assert rows == runs[0], (
            f"parallel run {i} differs from run 1 on: {sql}"
        )
    # Stable is not enough — it must also be *right*.
    reference = normalized_rows(prop_db.sql(sql, engine="naive"))
    assert normalized_rows(runs[0]) == reference, f"wrong answer on: {sql}"


@pytest.fixture(scope="module")
def reuse_db():
    """Same seeded data, but with the materialization manager enabled and
    views building on first demand — successive random plans share the
    base-table fragment, so the sweep exercises cross-query buffer hits,
    view builds, and lattice re-aggregation."""
    from repro.reuse import ReuseConfig

    return _make_db(random.Random(SEED), reuse=ReuseConfig(view_min_uses=1))


@pytest.mark.parametrize("case", _plans(), ids=lambda c: f"plan{c[0]}")
def test_reuse_on_differential(reuse_db, case):
    """Reuse-on parallel mode under strict plan verification must match
    the naive reference on every fuzzed plan — cached-buffer and
    view-source substitutions included. Canonicalized with the corpus
    rounding (9 significant digits before 6 decimals): view
    re-aggregation legitimately re-associates float sums, and a last-ulp
    shift can straddle a bare round-to-6 midpoint."""
    from repro.bench.corpora import canonical_rows

    _, sql = case
    config = EngineConfig(
        num_threads=4,
        num_partitions=8,
        execution_mode="parallel",
        verify_plans="strict",
    )
    rows = canonical_rows(reuse_db.sql(sql, config=config))
    reference = canonical_rows(reuse_db.sql(sql, engine="naive"))
    assert rows == reference, f"wrong answer on: {sql}"


def test_reuse_sweep_exercised_the_manager(reuse_db):
    """The differential sweep is only meaningful if the manager actually
    served something during it."""
    stats = reuse_db.reuse.stats()
    assert stats["hits"] > 0
    assert stats["views"] + stats["buffers"] > 0


# ----------------------------------------------------------------------
# Sanitized slice: the runtime concurrency sanitizer rides a slice of the
# same seeded corpus, serial and parallel, and cross-checks the static
# analyzer — a dynamic race is a failure, and a dynamic race in a file
# the static passes did not flag is an analyzer false-negative, which is
# a failure too. (Slice, not the full corpus: the sanitizer serializes
# every instrumented access through one lock.)
# ----------------------------------------------------------------------
N_SANITIZED = 10


@pytest.fixture(scope="module")
def live_sanitizer():
    from repro.analysis import sanitizer as san

    instance = san.enable()
    instance.reset()
    yield instance
    san.disable()


@pytest.fixture(scope="module")
def static_findings():
    from pathlib import Path

    from repro.analysis.report import analyze

    return analyze(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(scope="module")
def san_db():
    return _make_db(random.Random(SEED))


@pytest.mark.parametrize(
    "case", _plans()[:N_SANITIZED], ids=lambda c: f"plan{c[0]}"
)
def test_sanitized_corpus_slice_is_race_free(
    live_sanitizer, static_findings, san_db, case
):
    from repro.analysis.sanitizer import analyzer_false_negatives

    _, sql = case
    before = len(live_sanitizer.races)
    for config in (
        EngineConfig(execution_mode="simulated"),
        EngineConfig(num_threads=4, num_partitions=8, execution_mode="parallel"),
    ):
        san_db.sql(sql, config=config)
    new_races = live_sanitizer.races[before:]
    assert new_races == [], "\n".join(str(r) for r in new_races)
    # Symmetric failure: a race the static analyzer could not have seen.
    assert analyzer_false_negatives(new_races, static_findings) == []


def test_sanitized_slice_instrumentation_was_live(live_sanitizer):
    """The slice is only meaningful if the hooks actually fired."""
    assert live_sanitizer.region_count > 0
    assert live_sanitizer.access_count > 0
    assert live_sanitizer.races == []


def test_corpus_covers_windows_and_grouping_sets():
    """The realized 50-plan corpus must exercise every shape family the
    verifier sweep claims to cover: plain aggregates, window functions
    (incl. framed ones), and the grouping-set lattice (GROUPING SETS /
    ROLLUP / CUBE)."""
    corpus = [sql for _, sql in _plans()]
    assert any(" OVER (" in sql for sql in corpus)
    assert any("ROWS BETWEEN" in sql for sql in corpus)
    assert any("GROUPING SETS" in sql for sql in corpus)
    assert any("ROLLUP" in sql or "CUBE" in sql for sql in corpus)
    assert any(
        "GROUP BY" in sql and "GROUPING SETS" not in sql
        and "ROLLUP" not in sql and "CUBE" not in sql
        for sql in corpus
    )
