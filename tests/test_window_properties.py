"""Property-based window-function tests: the vectorized WINDOW operator vs
the naive per-row oracle on random data, frames, and orderings."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database

from tests.helpers import assert_engines_agree

profile = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_db(rows):
    db = Database(num_threads=2)
    db.create_table("w", {"p": "int64", "o": "int64", "x": "int64"})
    db.insert(
        "w",
        {
            "p": [p for p, _, _ in rows],
            "o": [o for _, o, _ in rows],
            "x": [x for _, _, x in rows],
        },
    )
    return db


rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),                       # partition key
        st.integers(0, 5),                       # order key (ties likely)
        st.one_of(st.integers(-9, 9), st.none()),  # value with NULLs
    ),
    min_size=1,
    max_size=40,
)


@profile
@given(rows_strategy)
def test_ranking_functions_property(rows):
    db = build_db(rows)
    assert_engines_agree(
        db,
        "SELECT p, o, x, "
        "rank() OVER (PARTITION BY p ORDER BY o) AS rk, "
        "dense_rank() OVER (PARTITION BY p ORDER BY o) AS dr, "
        "cume_dist() OVER (PARTITION BY p ORDER BY o) AS cd "
        "FROM w",
        engines=["lolepop"],
    )


@profile
@given(rows_strategy, st.integers(1, 3), st.integers(0, 3))
def test_rows_frame_aggregate_property(rows, preceding, following):
    db = build_db(rows)
    assert_engines_agree(
        db,
        f"SELECT p, o, x, sum(x) OVER (PARTITION BY p ORDER BY o, x "
        f"ROWS BETWEEN {preceding} PRECEDING AND {following} FOLLOWING) AS s, "
        f"min(x) OVER (PARTITION BY p ORDER BY o, x "
        f"ROWS BETWEEN {preceding} PRECEDING AND {following} FOLLOWING) AS m "
        "FROM w",
        engines=["lolepop"],
    )


@profile
@given(rows_strategy)
def test_range_frame_property(rows):
    """Peer-aware RANGE frames agree with the oracle even under heavy ties."""
    db = build_db(rows)
    assert_engines_agree(
        db,
        "SELECT p, o, x, sum(x) OVER (PARTITION BY p ORDER BY o) AS s, "
        "count(*) OVER (PARTITION BY p ORDER BY o) AS c FROM w",
        engines=["lolepop"],
    )


@profile
@given(rows_strategy, st.integers(1, 4))
def test_navigation_property(rows, offset):
    db = build_db(rows)
    assert_engines_agree(
        db,
        f"SELECT p, o, x, lead(x, {offset}) OVER (PARTITION BY p ORDER BY o, x) AS ld, "
        f"lag(x, {offset}, -1) OVER (PARTITION BY p ORDER BY o, x) AS lg "
        "FROM w",
        engines=["lolepop"],
    )


@profile
@given(rows_strategy, st.integers(1, 5))
def test_ntile_property(rows, buckets):
    db = build_db(rows)
    result = db.sql(
        f"SELECT p, ntile({buckets}) OVER (PARTITION BY p ORDER BY o, x) AS t "
        "FROM w"
    )
    # Invariants: bucket sizes differ by at most one, numbered from 1.
    by_partition = {}
    for p, t in result.rows():
        by_partition.setdefault(p, []).append(t)
    for tiles in by_partition.values():
        counts = {}
        for tile in tiles:
            counts[tile] = counts.get(tile, 0) + 1
        assert min(counts) == 1
        assert max(counts) <= buckets
        assert max(counts.values()) - min(counts.values()) <= 1
        # Earlier buckets are never smaller than later ones.
        ordered = [counts[k] for k in sorted(counts)]
        assert ordered == sorted(ordered, reverse=True)


@profile
@given(rows_strategy)
def test_window_percentile_property(rows):
    db = build_db(rows)
    assert_engines_agree(
        db,
        "SELECT p, x, median(x) OVER (PARTITION BY p) AS med, "
        "percentile_disc(0.25) WITHIN GROUP (ORDER BY x) OVER (PARTITION BY p) AS q1 "
        "FROM w",
        engines=["lolepop"],
    )
