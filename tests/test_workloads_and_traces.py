"""Sanity tests for the benchmark workload definitions and Figure-8-style
trace structure (the benchmarks themselves live under benchmarks/)."""

import pytest

from repro import Database, EngineConfig
from repro.bench import (
    FIGURE8_QUERIES,
    TABLE2_QUERIES,
    TABLE3_CATEGORIES,
    TABLE3_QUERIES,
)
from repro.bench.workloads import TABLE3_PAPER_FACTORS_20T
from repro.errors import PlanError
from repro.lolepop.base import Dag, SourceOp
from repro.sql import parse_sql
from repro.tpch import populate_database


@pytest.fixture(scope="module")
def db():
    database = Database()
    populate_database(database, scale_factor=0.002, tables=["lineitem"])
    return database


class TestWorkloadDefinitions:
    def test_table3_is_complete(self):
        assert sorted(TABLE3_QUERIES) == list(range(1, 19))
        assert sorted(TABLE3_CATEGORIES) == list(range(1, 19))
        assert sorted(TABLE3_PAPER_FACTORS_20T) == list(range(1, 19))

    @pytest.mark.parametrize("number", sorted(TABLE3_QUERIES))
    def test_table3_queries_parse(self, number):
        parse_sql(TABLE3_QUERIES[number])

    @pytest.mark.parametrize("number", sorted(TABLE3_QUERIES))
    def test_table3_queries_run(self, db, number):
        result = db.sql(TABLE3_QUERIES[number])
        assert len(result) > 0

    @pytest.mark.parametrize("qid", sorted(TABLE2_QUERIES))
    def test_table2_queries_run(self, db, qid):
        assert len(db.sql(TABLE2_QUERIES[qid])) > 0

    def test_table3_category_counts_match_paper(self):
        from collections import Counter

        counts = Counter(TABLE3_CATEGORIES.values())
        assert counts == {
            "Single": 3, "Ordered-Set": 4, "Grouping-Sets": 5,
            "Window": 3, "Nested": 3,
        }


class TestFigure8Traces:
    def run_trace(self, db, number):
        config = EngineConfig(
            num_threads=4, num_partitions=16, collect_trace=True,
            morsel_size=2000,
        )
        return db.sql(FIGURE8_QUERIES[number], config=config).trace

    def test_query1_operator_sequence(self, db):
        """Grouping-set query: hash pipelines only, no sorting."""
        trace = self.run_trace(db, 1)
        operators = set(trace.operators())
        assert "hashagg" in operators and "hashagg-merge" in operators
        assert "sort" not in operators

    def test_query1_preaggregation_dominates(self, db):
        """The paper: the first scan pipeline dominates; reaggregation
        pipelines are barely visible."""
        trace = self.run_trace(db, 1)
        assert trace.total_work("hashagg") > 1.5 * trace.total_work("hashagg-merge")

    def test_query2_shared_buffer_pipeline(self, db):
        """MAD query: partition → sort → window → (re)sort → ordagg."""
        trace = self.run_trace(db, 2)
        operators = trace.operators()
        for op in ("partition", "sort", "window", "ordagg"):
            assert op in operators
        # The window runs before the final ordagg.
        first_window = min(
            r.start for r in trace.records if r.operator == "window"
        )
        last_ordagg = max(
            r.end for r in trace.records if r.operator == "ordagg"
        )
        assert first_window < last_ordagg

    def test_threads_bounded(self, db):
        trace = self.run_trace(db, 2)
        assert set(trace.by_thread()) <= set(range(4))

    def test_makespan_not_exceeding_serial(self, db):
        config = EngineConfig(num_threads=4, collect_trace=True)
        result = db.sql(FIGURE8_QUERIES[2], config=config)
        assert result.simulated_time <= result.serial_time * 1.2


class TestDag:
    def test_cycle_detection(self):
        a = SourceOp(lambda: [])
        b = SourceOp(lambda: [])
        a.after.append(b)
        b.after.append(a)
        dag = Dag()
        dag.add(a)
        dag.add(b)
        dag.sink = a
        with pytest.raises(PlanError):
            dag.topological_order()

    def test_no_sink_rejected(self):
        dag = Dag()
        dag.add(SourceOp(lambda: []))
        with pytest.raises(PlanError):
            dag.topological_order()

    def test_explain_stable(self):
        db = Database()
        db.create_table("t", {"a": "int64", "b": "float64"})
        first = db.explain_lolepop("SELECT a, median(b) FROM t GROUP BY a")
        second = db.explain_lolepop("SELECT a, median(b) FROM t GROUP BY a")
        assert first == second
