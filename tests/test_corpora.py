"""Tests for the benchmark workload corpora (repro.bench.corpora).

Every corpus query must byte-match (canonicalized: sorted rows, floats
rounded) the naive row engine's reference answer in serial *and* parallel
mode under ``verify_plans="strict"`` — the property the benchmark snapshot
tool relies on to double as a differential correctness run. The sensor
family must actually spill under its edge profile, otherwise the "edge"
configuration tests nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.corpora import (
    CORPORA,
    SENSOR_EDGE_CORPUS,
    STAR_DS_CORPUS,
    TPCH_CORPUS,
    canonical_rows,
    get_corpus,
    reference_answers,
    verify_query,
)
from repro.bench.corpora.sensor import EDGE_PROFILE, generate_sensor
from repro.bench.corpora.star import generate_star

SCALE = 0.002  # floor sizes: ~500 sales rows, ~1000 sensor readings


# ----------------------------------------------------------------------
# Registry and generator determinism
# ----------------------------------------------------------------------
class TestRegistry:
    def test_three_families_registered(self):
        assert set(CORPORA) == {"tpch", "star_ds", "sensor_edge"}

    def test_get_corpus_unknown(self):
        with pytest.raises(KeyError, match="unknown corpus"):
            get_corpus("nope")

    def test_tpch_family_wraps_paper_queries(self):
        names = set(TPCH_CORPUS.queries)
        assert "t2_sum_group" in names
        assert "t3_q01" in names and "t3_q18" in names
        assert len(names) == 4 + 18

    def test_tpch_window_queries_carry_tie_breakers(self):
        """The corpus variants of the paper's window queries must be
        totally ordered — date-only OVER orderings leave lead/lag/cumsum
        tie-order-ambiguous, and the naive reference would then not be
        the unique right answer."""
        for name in ("t2_row_number", "t3_q13", "t3_q14", "t3_q15", "t3_q18"):
            sql = TPCH_CORPUS.queries[name]
            assert "l_orderkey" in sql, f"{name} window ordering not total"

    def test_edge_profile_sets_memory_budget(self):
        assert SENSOR_EDGE_CORPUS.engine_profile["memory_budget_bytes"] > 0
        config = SENSOR_EDGE_CORPUS.config(num_threads=2)
        assert config.memory_budget_bytes == EDGE_PROFILE["memory_budget_bytes"]
        assert config.num_threads == 2


class TestGenerators:
    def test_star_deterministic(self):
        a = generate_star(SCALE, seed=7)
        b = generate_star(SCALE, seed=7)
        for table in a:
            for col in a[table]:
                assert np.array_equal(a[table][col], b[table][col]), (
                    f"{table}.{col} differs across identical seeds"
                )

    def test_star_seed_changes_data(self):
        a = generate_star(SCALE, seed=7)
        b = generate_star(SCALE, seed=8)
        assert not np.array_equal(
            a["sales"]["s_quantity"], b["sales"]["s_quantity"]
        )

    def test_star_referential_integrity(self):
        data = generate_star(SCALE, seed=7)
        assert set(data["sales"]["s_store_id"]) <= set(
            data["store"]["st_store_id"]
        )
        assert set(data["sales"]["s_product_id"]) <= set(
            data["product"]["p_product_id"]
        )
        assert set(data["sales"]["s_date_id"]) <= set(
            data["date_dim"]["d_date_id"]
        )

    def test_sensor_deterministic(self):
        a = generate_sensor(SCALE, seed=13)
        b = generate_sensor(SCALE, seed=13)
        for col in a["readings"]:
            assert np.array_equal(a["readings"][col], b["readings"][col])

    def test_sensor_ticks_unique_and_increasing_per_device(self):
        data = generate_sensor(SCALE, seed=13)
        device = data["readings"]["r_device"]
        tick = data["readings"]["r_tick"]
        for d in np.unique(device):
            ticks = tick[device == d]
            assert np.all(np.diff(ticks) > 0), f"device {d} ticks not strict"


# ----------------------------------------------------------------------
# Differential correctness: every query, serial + parallel, strict verify
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def star_db():
    return STAR_DS_CORPUS.build_database(scale_factor=SCALE)


@pytest.fixture(scope="module")
def star_refs(star_db):
    return reference_answers(star_db, STAR_DS_CORPUS)


@pytest.fixture(scope="module")
def sensor_db():
    return SENSOR_EDGE_CORPUS.build_database(scale_factor=SCALE)


@pytest.fixture(scope="module")
def sensor_refs(sensor_db):
    return reference_answers(sensor_db, SENSOR_EDGE_CORPUS)


@pytest.mark.parametrize("name", sorted(STAR_DS_CORPUS.queries))
def test_star_ds_query_matches_naive(star_db, star_refs, name):
    ok, problems = verify_query(
        star_db, STAR_DS_CORPUS, name, star_refs[name], threads=4,
        verify_plans="strict",
    )
    assert ok, problems


@pytest.mark.parametrize("name", sorted(SENSOR_EDGE_CORPUS.queries))
def test_sensor_query_matches_naive_under_edge_profile(
    sensor_db, sensor_refs, name
):
    ok, problems = verify_query(
        sensor_db, SENSOR_EDGE_CORPUS, name, sensor_refs[name], threads=4,
        verify_plans="strict",
    )
    assert ok, problems


def test_sensor_edge_profile_actually_spills():
    """The edge profile exists to force spilling; prove it does at the
    family's default benchmark scale (the module-level SCALE is small
    enough to fit the 64 KiB budget, so use the corpus default here)."""
    db = SENSOR_EDGE_CORPUS.build_database()
    config = SENSOR_EDGE_CORPUS.config(
        collect_metrics=True, verify_plans="strict"
    )
    result = db.sql(
        SENSOR_EDGE_CORPUS.queries["se2_moving_avg"], config=config
    )
    counters = result.profile.to_dict()["counters"]
    assert counters.get("spill.events", 0) > 0
    assert counters.get("spill.bytes_written", 0) > 0


def test_canonical_rows_orders_and_rounds():
    rows = [(2.0000000004, "b"), (1.0, "a"), (None, "z")]
    assert canonical_rows(rows) == [(1.0, "a"), (2.0, "b"), (None, "z")]


def test_verify_query_reports_mismatch(star_db):
    """A wrong reference must be detected, not silently accepted — the
    self-verification path is only trustworthy if it can fail."""
    ok, problems = verify_query(
        star_db, STAR_DS_CORPUS, "ds9_median_of_store_totals",
        [("bogus",)], threads=2,
    )
    assert not ok
    assert any("diverges" in p for p in problems)
