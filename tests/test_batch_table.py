"""Unit tests for Batch, Table and Catalog."""

import numpy as np
import pytest

from repro.errors import CatalogError, ExecutionError
from repro.storage import Batch, Catalog, Column
from repro.types import DataType, Schema

SCHEMA = Schema.of(("a", "int64"), ("b", "string"))


def make_batch(n=5):
    return Batch.from_pydict(
        SCHEMA, {"a": list(range(n)), "b": [f"v{i}" for i in range(n)]}
    )


class TestBatch:
    def test_lengths_must_match(self):
        with pytest.raises(ExecutionError):
            Batch(
                SCHEMA,
                [
                    Column.from_values(DataType.INT64, [1, 2]),
                    Column.from_values(DataType.STRING, ["x"]),
                ],
            )

    def test_field_count_must_match(self):
        with pytest.raises(ExecutionError):
            Batch(SCHEMA, [Column.from_values(DataType.INT64, [1])])

    def test_from_pydict_missing_column(self):
        with pytest.raises(ExecutionError):
            Batch.from_pydict(SCHEMA, {"a": [1]})

    def test_rows_roundtrip(self):
        batch = make_batch(3)
        assert list(batch.rows()) == [(0, "v0"), (1, "v1"), (2, "v2")]

    def test_take_filter_slice(self):
        batch = make_batch(4)
        assert list(batch.take(np.array([3, 0])).rows()) == [(3, "v3"), (0, "v0")]
        assert len(batch.filter(np.array([True, False, True, False]))) == 2
        assert list(batch.slice(1, 2).rows()) == [(1, "v1")]

    def test_select(self):
        batch = make_batch(2).select(["b"])
        assert batch.schema.names() == ["b"]

    def test_with_column_append_and_replace(self):
        batch = make_batch(2)
        extra = Column.from_values(DataType.FLOAT64, [0.5, 1.5])
        appended = batch.with_column("c", DataType.FLOAT64, extra)
        assert appended.schema.names() == ["a", "b", "c"]
        replaced = appended.with_column(
            "c", DataType.FLOAT64, Column.from_values(DataType.FLOAT64, [9.0, 9.0])
        )
        assert replaced.column("c").to_pylist() == [9.0, 9.0]

    def test_morsels_cover_all_rows(self):
        batch = make_batch(10)
        pieces = list(batch.morsels(3))
        assert [len(p) for p in pieces] == [3, 3, 3, 1]
        assert Batch.concat(pieces).to_pydict() == batch.to_pydict()

    def test_morsels_empty_batch(self):
        batch = make_batch(0)
        assert [len(p) for p in batch.morsels(4)] == [0]

    def test_concat_requires_input(self):
        with pytest.raises(ExecutionError):
            Batch.concat([])


class TestTableCatalog:
    def test_create_insert_scan(self):
        catalog = Catalog()
        table = catalog.create_table("t", {"x": "int64", "y": "string"})
        table.insert_pydict({"x": [1, 2], "y": ["a", "b"]})
        table.insert_pydict({"x": [3], "y": ["c"]})
        assert table.num_rows == 3
        assert [len(b) for b in table.scan(morsel_size=2)] == [2, 1]

    def test_insert_validates_columns(self):
        catalog = Catalog()
        table = catalog.create_table("t", {"x": "int64"})
        with pytest.raises(CatalogError):
            table.insert_pydict({"x": [1], "zz": [2]})
        with pytest.raises(CatalogError):
            table.insert_pydict({})

    def test_insert_arrays_fast_path(self):
        catalog = Catalog()
        table = catalog.create_table("t", {"x": "int64", "s": "string"})
        table.insert_arrays(
            {"x": np.arange(4), "s": np.array(["a", "b", "c", "d"], dtype=object)}
        )
        assert table.num_rows == 4
        assert table.column("s").to_pylist() == ["a", "b", "c", "d"]

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", {"x": "int64"})
        with pytest.raises(CatalogError):
            catalog.create_table("T", {"x": "int64"})

    def test_drop_and_unknown(self):
        catalog = Catalog()
        catalog.create_table("t", {"x": "int64"})
        catalog.drop_table("t")
        assert not catalog.has("t")
        with pytest.raises(CatalogError):
            catalog.get("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_truncate(self):
        catalog = Catalog()
        table = catalog.create_table("t", {"x": "int64"})
        table.insert_pydict({"x": [1, 2]})
        table.truncate()
        assert table.num_rows == 0
