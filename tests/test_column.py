"""Unit tests for Column (values + validity mask)."""

import datetime

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.storage import Column
from repro.types import DataType


class TestConstruction:
    def test_from_values_no_nulls(self):
        col = Column.from_values(DataType.INT64, [1, 2, 3])
        assert col.valid is None  # normalized: all-valid carries no mask
        assert col.to_pylist() == [1, 2, 3]

    def test_from_values_with_nulls(self):
        col = Column.from_values(DataType.FLOAT64, [1.5, None, 2.5])
        assert col.has_nulls
        assert col.null_count() == 1
        assert col.to_pylist() == [1.5, None, 2.5]

    def test_all_true_mask_normalized_away(self):
        col = Column(
            DataType.INT64, np.array([1, 2]), np.array([True, True])
        )
        assert col.valid is None

    def test_dates_from_strings(self):
        col = Column.from_values(DataType.DATE, ["1995-06-17", None])
        assert col.value_at(0) == datetime.date(1995, 6, 17)
        assert col.value_at(1) is None

    def test_constant_and_nulls(self):
        assert Column.constant(DataType.INT64, 7, 3).to_pylist() == [7, 7, 7]
        assert Column.nulls(DataType.STRING, 2).to_pylist() == [None, None]

    def test_constant_none_is_nulls(self):
        assert Column.constant(DataType.BOOL, None, 2).to_pylist() == [None, None]

    def test_requires_ndarray(self):
        with pytest.raises(ExecutionError):
            Column(DataType.INT64, [1, 2, 3])

    def test_mask_shape_mismatch(self):
        with pytest.raises(ExecutionError):
            Column(DataType.INT64, np.array([1, 2]), np.array([True]))


class TestTransforms:
    def test_take(self):
        col = Column.from_values(DataType.INT64, [10, None, 30])
        taken = col.take(np.array([2, 0, 1]))
        assert taken.to_pylist() == [30, 10, None]

    def test_filter(self):
        col = Column.from_values(DataType.INT64, [1, 2, 3, 4])
        assert col.filter(np.array([True, False, True, False])).to_pylist() == [1, 3]

    def test_slice(self):
        col = Column.from_values(DataType.STRING, ["a", "b", "c"])
        assert col.slice(1, 3).to_pylist() == ["b", "c"]

    def test_concat(self):
        a = Column.from_values(DataType.INT64, [1, None])
        b = Column.from_values(DataType.INT64, [3])
        merged = Column.concat([a, b])
        assert merged.to_pylist() == [1, None, 3]

    def test_concat_type_mismatch(self):
        a = Column.from_values(DataType.INT64, [1])
        b = Column.from_values(DataType.FLOAT64, [1.0])
        with pytest.raises(ExecutionError):
            Column.concat([a, b])

    def test_concat_empty_list(self):
        with pytest.raises(ExecutionError):
            Column.concat([])


class TestSortKeys:
    def test_nulls_sort_last_ascending(self):
        col = Column.from_values(DataType.INT64, [2, None, 1])
        key = col.sort_key()
        order = np.argsort(key, kind="stable")
        assert list(order) == [2, 0, 1]

    def test_nulls_sort_last_descending(self):
        col = Column.from_values(DataType.INT64, [2, None, 3])
        key = col.sort_key(descending=True)
        order = np.argsort(key, kind="stable")
        assert list(order) == [2, 0, 1]

    def test_string_rank_keys(self):
        col = Column.from_values(DataType.STRING, ["pear", "apple", "fig"])
        order = np.argsort(col.sort_key(), kind="stable")
        assert list(order) == [1, 2, 0]

    def test_bool_keys(self):
        col = Column.from_values(DataType.BOOL, [True, False])
        order = np.argsort(col.sort_key(), kind="stable")
        assert list(order) == [1, 0]


class TestValueAccess:
    def test_python_types(self):
        assert isinstance(
            Column.from_values(DataType.INT64, [1]).value_at(0), int
        )
        assert isinstance(
            Column.from_values(DataType.FLOAT64, [1.0]).value_at(0), float
        )
        assert isinstance(
            Column.from_values(DataType.BOOL, [True]).value_at(0), bool
        )

    def test_copy_is_independent(self):
        col = Column.from_values(DataType.INT64, [1, 2])
        clone = col.copy()
        clone.values[0] = 99
        assert col.value_at(0) == 1
