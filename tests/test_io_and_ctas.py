"""Tests for CSV import, CREATE TABLE AS, and the profiling API."""

import datetime
import io
import textwrap

import pytest

from repro import Database, EngineConfig
from repro.errors import CatalogError, ExecutionError
from repro.io_csv import infer_column_type, read_csv
from repro.types import DataType


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        textwrap.dedent(
            """\
            id,price,day,flag,note
            1,1.5,2024-01-01,true,alpha
            2,2.0,2024-02-01,false,
            3,,2024-03-01,true,gamma
            """
        )
    )
    return str(path)


class TestInference:
    def test_int(self):
        assert infer_column_type(["1", "2", ""]) is DataType.INT64

    def test_float_fallback(self):
        assert infer_column_type(["1", "2.5"]) is DataType.FLOAT64

    def test_date(self):
        assert infer_column_type(["2024-01-01"]) is DataType.DATE

    def test_bool(self):
        assert infer_column_type(["true", "F"]) is DataType.BOOL

    def test_string_fallback(self):
        assert infer_column_type(["1", "x"]) is DataType.STRING

    def test_all_empty_defaults_int(self):
        assert infer_column_type(["", ""]) is DataType.INT64


class TestReadCsv:
    def test_schema_and_values(self, csv_file):
        schema, data = read_csv(csv_file)
        assert [f.dtype for f in schema] == [
            DataType.INT64, DataType.FLOAT64, DataType.DATE,
            DataType.BOOL, DataType.STRING,
        ]
        assert data["price"] == [1.5, 2.0, None]
        assert data["day"][0] == datetime.date(2024, 1, 1)
        assert data["note"] == ["alpha", None, "gamma"]

    def test_headerless(self, tmp_path):
        path = tmp_path / "nh.csv"
        path.write_text("1,a\n2,b\n")
        schema, data = read_csv(str(path), header=False)
        assert schema.names() == ["c0", "c1"]
        assert data["c1"] == ["a", "b"]

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(CatalogError):
            read_csv(str(path))


class TestDatabaseCsv:
    def test_load_and_query(self, csv_file):
        db = Database()
        db.load_csv("items", csv_file)
        rows = db.sql(
            "SELECT count(*), sum(price), min(day) FROM items"
        ).rows()
        assert rows[0][0] == 3
        assert rows[0][1] == pytest.approx(3.5)
        assert rows[0][2] == datetime.date(2024, 1, 1)

    def test_explicit_schema(self, csv_file):
        from repro.types import Schema

        db = Database()
        schema = Schema.of(
            ("id", "string"), ("price", "string"), ("day", "string"),
            ("flag", "string"), ("note", "string"),
        )
        table = db.load_csv("raw", csv_file, schema=schema)
        assert all(f.dtype is DataType.STRING for f in table.schema)


class TestCreateTableAs:
    def test_materializes_aggregate(self):
        db = Database()
        db.create_table("t", {"g": "int64", "x": "int64"})
        db.insert("t", {"g": [1, 1, 2], "x": [10, 20, 30]})
        table = db.create_table_as(
            "summary", "SELECT g, sum(x) AS total FROM t GROUP BY g"
        )
        assert table.num_rows == 2
        rows = sorted(db.sql("SELECT g, total FROM summary").rows())
        assert rows == [(1, 30), (2, 30)]

    def test_empty_result(self):
        db = Database()
        db.create_table("t", {"x": "int64"})
        table = db.create_table_as("e", "SELECT x FROM t WHERE x > 0")
        assert table.num_rows == 0


class TestProfileApi:
    def test_operator_summary(self):
        db = Database()
        db.create_table("t", {"g": "int64", "x": "float64"})
        db.insert("t", {"g": [1, 2, 1], "x": [0.5, 1.0, 2.0]})
        result = db.sql(
            "SELECT g, median(x) FROM t GROUP BY g",
            config=EngineConfig(collect_trace=True),
        )
        summary = result.operator_summary()
        assert "ordagg" in summary
        work, count = summary["ordagg"]
        assert work >= 0 and count >= 1

    def test_summary_requires_trace(self):
        db = Database()
        db.create_table("t", {"x": "int64"})
        db.insert("t", {"x": [1]})
        result = db.sql("SELECT sum(x) FROM t")
        with pytest.raises(ExecutionError):
            result.operator_summary()

    def test_pretty(self):
        db = Database()
        db.create_table("t", {"x": "int64"})
        db.insert("t", {"x": [1, 2]})
        text = db.sql("SELECT sum(x) AS s FROM t").pretty()
        assert "| s |" in text and "| 3 |" in text

    def test_shell_profile(self):
        from repro.shell import Shell

        out = io.StringIO()
        shell = Shell(out=out)
        shell.db.create_table("t", {"x": "int64"})
        shell.db.insert("t", {"x": [1, 2, 3]})
        shell.execute_line(".profile SELECT x, count(*) FROM t GROUP BY x")
        assert "work items" in out.getvalue()
