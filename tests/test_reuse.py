"""Tests for the cross-query materialization manager (``repro.reuse``).

The differential guarantee under test: with reuse enabled, every query —
including after DML-driven view maintenance — returns canonically
identical rows to a reuse-off database, under ``verify_plans="strict"``
so every substituted DAG also passes the static plan verifier with zero
diagnostics.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro import Database, EngineConfig
from repro.bench.corpora import (
    STAR_DS_CORPUS,
    canonical_rows,
    reference_answers,
    verify_query,
)
from repro.lolepop import CachedBufferOp, ViewSourceOp
from repro.lolepop.verify import check_dag
from repro.reuse import ReuseConfig
from repro.server.admission import AdmissionController

STRICT = EngineConfig(verify_plans="strict")


def _populate(db: Database, rows: int = 400, seed: int = 11) -> None:
    rng = np.random.default_rng(seed)
    db.create_table(
        "fact", {"k": "int64", "g": "int64", "h": "int64", "v": "float64"}
    )
    db.insert(
        "fact",
        {
            "k": rng.integers(0, 1000, rows),
            "g": rng.integers(0, 6, rows),
            "h": rng.integers(0, 4, rows),
            "v": rng.random(rows).round(4),
        },
    )


def make_pair(reuse=True, rows: int = 400, plan_cache_size: int = 0):
    """(reuse-enabled db, identically-populated reuse-off db). The plan
    cache is off by default so textually identical repeats re-translate
    and actually consult the manager."""
    on = Database(plan_cache_size=plan_cache_size, reuse=reuse)
    off = Database()
    for db in (on, off):
        _populate(db, rows)
    return on, off


def assert_differential(on: Database, off: Database, sql: str) -> None:
    got = canonical_rows(on.sql(sql, config=STRICT))
    want = canonical_rows(off.sql(sql, config=STRICT))
    assert got == want, f"reuse-on diverges from reuse-off on: {sql}"


def _nodes(result):
    return [node for dag in result.dags for node in dag.topological_order()]


# ---------------------------------------------------------------------------
# Property-keyed buffer cache
# ---------------------------------------------------------------------------
class TestBufferCache:
    def test_ordered_buffer_reused_across_queries(self):
        on, off = make_pair()
        sql = "SELECT k, v FROM fact ORDER BY k"
        assert_differential(on, off, sql)
        before = on.reuse.stats()["hits"]
        result = on.sql(sql, config=STRICT)
        assert canonical_rows(result) == canonical_rows(off.sql(sql))
        assert on.reuse.stats()["hits"] > before
        substituted = [
            n for n in _nodes(result) if isinstance(n, CachedBufferOp)
        ]
        assert substituted, "second run did not substitute a cached buffer"

    def test_similar_queries_share_one_buffer(self):
        """LIMIT / extra sort keys are downstream of the cached site, so
        distinct-but-similar queries hit the same entries."""
        on, off = make_pair()
        on.sql("SELECT k, v FROM fact ORDER BY k", config=STRICT)
        for sql in (
            "SELECT k, v FROM fact ORDER BY k LIMIT 3",
            "SELECT k, v FROM fact ORDER BY k, v",
        ):
            before = on.reuse.stats()["hits"]
            assert_differential(on, off, sql)
            assert on.reuse.stats()["hits"] > before, sql

    def test_substituted_dag_has_zero_diagnostics(self):
        on, _ = make_pair()
        sql = "SELECT k, v FROM fact ORDER BY k"
        on.sql(sql, config=STRICT)
        result = on.sql(sql, config=STRICT)
        assert any(isinstance(n, CachedBufferOp) for n in _nodes(result))
        for dag in result.dags:
            diagnostics, _ = check_dag(dag)
            assert diagnostics == []

    def test_dml_invalidates_buffers(self):
        on, off = make_pair()
        sql = "SELECT k, v FROM fact ORDER BY k"
        on.sql(sql, config=STRICT)
        extra = {"k": [5, 7], "g": [1, 2], "h": [0, 1], "v": [0.5, 0.25]}
        on.insert("fact", extra)
        off.insert("fact", extra)
        assert on.reuse.stats()["buffers"] == 0  # eagerly dropped
        assert_differential(on, off, sql)

    def test_disabled_buffers_still_correct(self):
        on, off = make_pair(reuse=ReuseConfig(enable_buffers=False))
        sql = "SELECT k, v FROM fact ORDER BY k"
        on.sql(sql, config=STRICT)
        assert_differential(on, off, sql)
        assert on.reuse.stats()["buffers"] == 0


# ---------------------------------------------------------------------------
# Incrementally-maintained aggregate views + lattice reuse
# ---------------------------------------------------------------------------
def make_view_pair(**kwargs):
    kwargs.setdefault("view_min_uses", 1)
    return make_pair(reuse=ReuseConfig(**kwargs))


class TestAggregateViews:
    FINE = "SELECT g, h, sum(v) AS s, count(*) AS c FROM fact GROUP BY g, h"

    def test_view_built_and_served(self):
        on, off = make_view_pair()
        assert_differential(on, off, self.FINE)
        assert on.reuse.stats()["views"] == 1
        result = on.sql(self.FINE, config=STRICT)
        assert any(isinstance(n, ViewSourceOp) for n in _nodes(result))
        assert canonical_rows(result) == canonical_rows(off.sql(self.FINE))

    def test_lattice_answers_coarser_groupings_from_finer_state(self):
        on, off = make_view_pair()
        on.sql(self.FINE, config=STRICT)
        for sql in (
            "SELECT g, sum(v) AS s FROM fact GROUP BY g",
            "SELECT g, h, sum(v) AS s FROM fact GROUP BY ROLLUP (g, h)",
            "SELECT g, h, sum(v) AS s FROM fact GROUP BY CUBE (g, h)",
            "SELECT g, h, sum(v) AS s FROM fact "
            "GROUP BY GROUPING SETS ((g, h), (h), ())",
        ):
            assert_differential(on, off, sql)
            # Served from the finer (g, h) state: no second view appears.
            assert on.reuse.stats()["views"] == 1, sql

    def test_new_aggregate_builds_new_view(self):
        on, _ = make_view_pair()
        on.sql(self.FINE, config=STRICT)
        on.sql("SELECT g, min(v) AS m FROM fact GROUP BY g", config=STRICT)
        assert on.reuse.stats()["views"] == 2

    def test_insert_delta_maintains_view(self):
        on, off = make_view_pair()
        on.sql(self.FINE, config=STRICT)
        extra = {
            "k": [1, 2, 3],
            "g": [0, 5, 9],  # 9 is a brand-new group
            "h": [0, 1, 2],
            "v": [1.5, 2.5, 3.5],
        }
        on.insert("fact", extra)
        off.insert("fact", extra)
        stats = on.reuse.stats()
        assert stats["views"] == 1  # maintained, not dropped
        assert stats["maintenance_events"] >= 1
        assert_differential(on, off, self.FINE)
        # The naive row engine is an independent oracle on the same db.
        assert canonical_rows(on.sql(self.FINE, config=STRICT)) == (
            canonical_rows(on.sql(self.FINE, engine="naive"))
        )

    def test_maintenance_respects_filter_fragment(self):
        on, off = make_view_pair()
        sql = "SELECT g, sum(v) AS s FROM fact WHERE h = 1 GROUP BY g"
        on.sql(sql, config=STRICT)
        extra = {"k": [1, 2], "g": [0, 0], "h": [1, 3], "v": [10.0, 20.0]}
        on.insert("fact", extra)  # only the h=1 row may reach the view
        off.insert("fact", extra)
        assert_differential(on, off, sql)

    def test_truncate_invalidates_view(self):
        on, off = make_view_pair()
        on.sql(self.FINE, config=STRICT)
        on.table("fact").truncate()
        off.table("fact").truncate()
        assert on.reuse.stats()["views"] == 0
        assert_differential(on, off, self.FINE)

    def test_min_uses_threshold(self):
        on, _ = make_pair(reuse=ReuseConfig(view_min_uses=2))
        sql = "SELECT g, sum(v) AS s FROM fact GROUP BY g"
        on.sql(sql, config=STRICT)
        assert on.reuse.stats()["views"] == 0  # first demand only counted
        on.sql(sql, config=STRICT)
        assert on.reuse.stats()["views"] == 1

    def test_nondecomposable_aggregates_bypass_views(self):
        on, off = make_view_pair()
        sql = "SELECT g, median(v) AS m FROM fact GROUP BY g"
        on.sql(sql, config=STRICT)
        on.sql(sql, config=STRICT)
        assert on.reuse.stats()["views"] == 0
        assert_differential(on, off, sql)


# ---------------------------------------------------------------------------
# Eviction and budget accounting
# ---------------------------------------------------------------------------
class TestEviction:
    def test_budget_bounds_resident_bytes(self):
        budget = 4096
        on = Database(
            plan_cache_size=0,
            reuse=ReuseConfig(budget_bytes=budget, view_min_uses=1),
        )
        _populate(on, rows=600)
        _populate_second_table(on)
        queries = [
            "SELECT k, v FROM fact ORDER BY k",
            "SELECT k, v FROM fact ORDER BY v",
            "SELECT g, h, sum(v) AS s FROM fact GROUP BY g, h",
            "SELECT a, b FROM dim ORDER BY a",
            "SELECT a, sum(b) AS s FROM dim GROUP BY a",
        ]
        for sql in queries:
            on.sql(sql, config=STRICT)
            assert on.reuse.stats()["resident_bytes"] <= budget
        assert on.reuse.stats()["evictions"] > 0

    def test_clear_resets_everything(self):
        on, _ = make_view_pair()
        on.sql("SELECT k, v FROM fact ORDER BY k", config=STRICT)
        on.sql("SELECT g, sum(v) AS s FROM fact GROUP BY g", config=STRICT)
        assert on.reuse.clear() > 0
        stats = on.reuse.stats()
        assert stats["buffers"] == 0 and stats["views"] == 0
        assert stats["resident_bytes"] == 0


def _populate_second_table(db: Database, rows: int = 500) -> None:
    rng = np.random.default_rng(3)
    db.create_table("dim", {"a": "int64", "b": "float64"})
    db.insert(
        "dim",
        {"a": rng.integers(0, 50, rows), "b": rng.random(rows).round(4)},
    )


# ---------------------------------------------------------------------------
# Per-table version invalidation of the plan and result caches
# ---------------------------------------------------------------------------
class TestPerTableInvalidation:
    def _db(self):
        db = Database()
        _populate(db, rows=40)
        _populate_second_table(db, rows=40)
        return db

    def test_plan_cache_survives_unrelated_dml(self, monkeypatch):
        import repro.api

        db = self._db()
        calls = {"parse": 0}
        real_parse = repro.api.parse_sql

        def counting_parse(text):
            calls["parse"] += 1
            return real_parse(text)

        monkeypatch.setattr(repro.api, "parse_sql", counting_parse)
        sql = "SELECT sum(v) FROM fact"
        db.sql(sql)
        db.insert("dim", {"a": [1], "b": [2.0]})
        db.sql(sql)
        assert calls["parse"] == 1  # dim DML left the fact entry current
        db.insert("fact", {"k": [1], "g": [0], "h": [0], "v": [1.0]})
        db.sql(sql)
        assert calls["parse"] == 2  # fact DML invalidated it

    def test_plan_cache_ddl_still_invalidates(self):
        db = self._db()
        sql = "SELECT sum(v) FROM fact"
        db.sql(sql)
        misses = db.plan_cache.misses
        db.create_table("other", {"z": "int64"})
        db.sql(sql)
        assert db.plan_cache.misses == misses + 1

    def test_result_cache_survives_unrelated_dml(self):
        from repro.server import QueryService

        db = self._db()
        with QueryService(db) as service:
            sql = "SELECT sum(v) FROM fact"
            service.submit(sql).result(10)
            db.insert("dim", {"a": [1], "b": [2.0]})
            ticket = service.submit(sql)
            ticket.result(10)
            assert ticket.from_result_cache
            db.insert("fact", {"k": [1], "g": [0], "h": [0], "v": [9.0]})
            ticket = service.submit(sql)
            fresh = ticket.result(10)
            assert not ticket.from_result_cache
            assert fresh.rows() != []


# ---------------------------------------------------------------------------
# Serving integration: admission budget, telemetry, shell
# ---------------------------------------------------------------------------
class _FakeTicket:
    def __init__(self, est):
        self.query_id = "q1"
        self.est_bytes = est


class TestServingIntegration:
    def test_admission_counts_extra_reserved(self):
        held = {"bytes": 0.0}
        controller = AdmissionController(
            4, 8, memory_budget_bytes=100.0,
            extra_reserved=lambda: held["bytes"],
        )
        assert controller.admit(_FakeTicket(60.0)) is True
        controller.release(_FakeTicket(60.0))
        held["bytes"] = 90.0
        assert controller.admit(_FakeTicket(60.0)) is False  # queued
        held["bytes"] = 0.0

    def test_admission_broken_gauge_is_ignored(self):
        def boom():
            raise RuntimeError("gauge broke")

        controller = AdmissionController(
            2, 4, memory_budget_bytes=100.0, extra_reserved=boom
        )
        assert controller.admit(_FakeTicket(50.0)) is True

    def test_service_wires_manager_into_admission_and_stats(self):
        from repro.server import QueryService, ServiceConfig

        db = Database(plan_cache_size=0, reuse=True)
        _populate(db, rows=60)
        with QueryService(
            db, ServiceConfig(memory_budget_bytes=1 << 30)
        ) as service:
            assert service.admission.extra_reserved is not None
            service.submit(
                "SELECT k, v FROM fact ORDER BY k", use_result_cache=False
            ).result(10)
            service.submit(
                "SELECT k, v FROM fact ORDER BY k LIMIT 5",
                use_result_cache=False,
            ).result(10)
            stats = service.stats()
            assert "reuse" in stats
            assert stats["reuse"]["hits"] >= 1
            assert service.admission.extra_reserved() == (
                db.reuse.resident_bytes
            )

    def test_telemetry_carries_reuse_events_and_summary(self):
        from repro.observability.telemetry import Telemetry, TelemetryConfig

        telemetry = Telemetry(TelemetryConfig(enabled=True))
        db = Database(plan_cache_size=0, telemetry=telemetry, reuse=True)
        _populate(db, rows=60)
        sql = "SELECT k, v FROM fact ORDER BY k"
        db.sql(sql, config=STRICT)
        db.sql(sql, config=STRICT)
        summary = telemetry.summary()
        assert summary["reuse"]["hits"] >= 1
        kinds = {e["kind"] for e in telemetry.recorder.snapshot()}
        assert "reuse.hit" in kinds and "reuse.miss" in kinds

    def test_report_renders_reuse_line(self):
        from repro.observability.telemetry import (
            Telemetry,
            TelemetryConfig,
            render_report,
        )

        telemetry = Telemetry(TelemetryConfig(enabled=True))
        db = Database(plan_cache_size=0, telemetry=telemetry, reuse=True)
        _populate(db, rows=40)
        db.sql("SELECT k FROM fact ORDER BY k")
        text = render_report(telemetry.report())
        assert "reuse:" in text

    def test_report_tolerates_managerless_dumps(self):
        from repro.observability.telemetry import (
            Telemetry,
            TelemetryConfig,
            render_report,
        )

        telemetry = Telemetry(TelemetryConfig(enabled=True))
        report = telemetry.report()
        assert report["reuse"] is None
        assert "reuse:" not in render_report(report)

    def test_shell_reuse_commands(self):
        from repro.shell import Shell

        db = Database(plan_cache_size=0, reuse=True)
        _populate(db, rows=60)
        out = io.StringIO()
        shell = Shell(database=db, out=out)
        shell.execute_line("SELECT k, v FROM fact ORDER BY k")
        shell.execute_line(".reuse")
        shell.execute_line(".reuse list")
        shell.execute_line(".reuse clear")
        shell.execute_line(".reuse bogus")
        text = out.getvalue()
        assert "hits" in text and "resident" in text
        assert "[buffer]" in text
        assert "entries dropped" in text
        assert "usage: .reuse" in text

    def test_shell_reuse_disabled_message(self):
        out = io.StringIO()
        from repro.shell import Shell

        shell = Shell(database=Database(), out=out)
        shell.execute_line(".reuse")
        assert "reuse disabled" in out.getvalue()


# ---------------------------------------------------------------------------
# Corpus differential: star_ds lattice family, reuse on, serial + parallel
# ---------------------------------------------------------------------------
SCALE = 0.002


@pytest.fixture(scope="module")
def star_reuse_db():
    return STAR_DS_CORPUS.build_database(
        scale_factor=SCALE, reuse=ReuseConfig(view_min_uses=1)
    )


@pytest.fixture(scope="module")
def star_reuse_refs(star_reuse_db):
    return reference_answers(star_reuse_db, STAR_DS_CORPUS)


@pytest.mark.parametrize("name", sorted(STAR_DS_CORPUS.queries))
def test_star_ds_reuse_on_matches_naive(star_reuse_db, star_reuse_refs, name):
    """Warm manager (queries before this one may have seeded it), strict
    verification, serial + parallel — reuse must be invisible in the
    rows."""
    ok, problems = verify_query(
        star_reuse_db, STAR_DS_CORPUS, name, star_reuse_refs[name],
        threads=4, verify_plans="strict",
    )
    assert ok, problems


def test_star_ds_reuse_after_dml_matches_naive(star_reuse_db):
    """DML after the sweep above: maintained/invalidated state must still
    be invisible — fresh naive references are the oracle."""
    sales = star_reuse_db.table("sales")
    batch = sales.to_batch()
    delta = {
        f.name: np.asarray(batch.column(f.name).values[:25])
        for f in sales.schema
    }
    star_reuse_db.insert("sales", delta)
    for name in (
        "ds1_rollup_region_state",
        "ds3_grouping_sets_lattice",
        "ds10_three_key_lattice",
    ):
        reference = canonical_rows(
            star_reuse_db.sql(STAR_DS_CORPUS.queries[name], engine="naive")
        )
        ok, problems = verify_query(
            star_reuse_db, STAR_DS_CORPUS, name, reference,
            threads=4, verify_plans="strict",
        )
        assert ok, problems
