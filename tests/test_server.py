"""Tests for the query service layer: sessions, admission control,
cancellation, result caching, and concurrent differential correctness."""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import AdmissionError, Database, QueryCancelled, QueryService, ServiceConfig
from repro.errors import ReproError
from repro.observability.metrics import MetricsRegistry
from repro.server.admission import AdmissionController, estimate_memory_bytes

from tests.helpers import normalized_rows


def make_db(rows=3000, seed=1, plan_cache_size=256):
    db = Database(num_threads=2, plan_cache_size=plan_cache_size)
    db.create_table("t", {"g": "int64", "x": "float64", "o": "int64"})
    rng = np.random.default_rng(seed)
    db.insert(
        "t",
        {
            "g": rng.integers(0, 6, rows),
            "x": rng.random(rows).round(4),
            "o": rng.permutation(rows),
        },
    )
    return db


def service_for(db, registry=None, **cfg):
    return QueryService(
        db, ServiceConfig(**cfg), registry=registry or MetricsRegistry()
    )


class _FakeTicket:
    def __init__(self, query_id, est_bytes=0.0):
        self.query_id = query_id
        self.est_bytes = est_bytes


# ---------------------------------------------------------------------------
# Admission controller (unit, deterministic)
# ---------------------------------------------------------------------------
class TestAdmissionController:
    def test_admit_until_full_then_queue(self):
        ctl = AdmissionController(max_concurrent=2, max_queue=2)
        a, b, c = (_FakeTicket(f"q{i}") for i in range(3))
        assert ctl.admit(a) is True
        assert ctl.admit(b) is True
        assert ctl.admit(c) is False  # queued
        assert ctl.running == 2 and ctl.queue_depth == 1

    def test_queue_full_rejection(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=1)
        ctl.admit(_FakeTicket("q1"))
        ctl.admit(_FakeTicket("q2"))
        with pytest.raises(AdmissionError) as info:
            ctl.admit(_FakeTicket("q3"))
        assert info.value.reason == "queue_full"

    def test_over_budget_rejection(self):
        ctl = AdmissionController(1, 4, memory_budget_bytes=100)
        with pytest.raises(AdmissionError) as info:
            ctl.admit(_FakeTicket("big", est_bytes=101))
        assert info.value.reason == "over_budget"

    def test_memory_budget_queues_within_budget(self):
        ctl = AdmissionController(max_concurrent=4, max_queue=4,
                                  memory_budget_bytes=100)
        a = _FakeTicket("a", 60)
        b = _FakeTicket("b", 60)  # fits alone, not alongside a
        assert ctl.admit(a) is True
        assert ctl.admit(b) is False
        assert ctl.reserved_bytes == 60
        ready = ctl.release(a)
        assert ready == [b]
        assert ctl.reserved_bytes == 60 and ctl.running == 1

    def test_release_dispatches_fifo(self):
        ctl = AdmissionController(max_concurrent=1, max_queue=8)
        first = _FakeTicket("first")
        ctl.admit(first)
        queued = [_FakeTicket(f"w{i}") for i in range(3)]
        for ticket in queued:
            assert ctl.admit(ticket) is False
        # Strict FIFO: releasing the runner starts exactly the head.
        ready = ctl.release(first)
        assert [t.query_id for t in ready] == ["w0"]
        ready = ctl.release(ready[0])
        assert [t.query_id for t in ready] == ["w1"]

    def test_fifo_head_blocks_later_small_queries(self):
        # Strict FIFO: a big head must not be overtaken by a small one.
        ctl = AdmissionController(4, 8, memory_budget_bytes=100)
        runner = _FakeTicket("run", 80)
        ctl.admit(runner)
        big = _FakeTicket("big", 90)
        small = _FakeTicket("small", 5)
        assert ctl.admit(big) is False
        assert ctl.admit(small) is False
        ready = ctl.release(runner)
        assert [t.query_id for t in ready] == ["big", "small"]

    def test_remove_queued(self):
        ctl = AdmissionController(1, 4)
        ctl.admit(_FakeTicket("run"))
        queued = _FakeTicket("q")
        ctl.admit(queued)
        assert ctl.remove(queued) is True
        assert ctl.remove(queued) is False
        assert ctl.queue_depth == 0

    def test_estimate_memory_bytes_positive_and_monotone(self):
        db = make_db(rows=2000)
        from repro.logical.cardinality import CardinalityEstimator
        from repro.stats import StatisticsCache

        estimator = CardinalityEstimator(StatisticsCache(db.catalog))
        small = estimate_memory_bytes(
            db.plan("SELECT sum(x) FROM t WHERE g = 0"), estimator
        )
        big = estimate_memory_bytes(
            db.plan("SELECT t1.x FROM t t1 JOIN t t2 ON t1.g = t2.g"),
            estimator,
        )
        assert 0 < small < big


# ---------------------------------------------------------------------------
# Service-level admission + lifecycle
# ---------------------------------------------------------------------------
class TestQueryService:
    def test_single_query_matches_direct_execution(self):
        db = make_db()
        sql = "SELECT g, median(x), sum(x) FROM t GROUP BY g"
        expected = db.sql(sql).rows()
        with service_for(db) as service:
            got = service.session().execute(sql).rows()
        assert got == expected

    def test_concurrency_capped_and_all_complete(self):
        db = make_db()
        sql = "SELECT g, median(x) FROM t GROUP BY g"
        expected = db.sql(sql).rows()
        with service_for(db, max_concurrent=1, max_queue=64) as service:
            session = service.session()
            tickets = [
                session.submit(sql, use_result_cache=False) for _ in range(10)
            ]
            results = [t.result(timeout=60) for t in tickets]
        assert all(r.rows() == expected for r in results)
        stats = service.stats()["service"]
        assert stats["submitted"] == 10
        assert stats["admitted"] == 10
        assert stats["completed"] == 10
        # With one slot and instant submissions, later queries had to queue.
        assert stats.get("queued", 0) >= 1
        assert service.admission.running == 0
        assert service.admission.queue_depth == 0

    def test_over_budget_rejection_via_service(self):
        db = make_db(rows=5000)
        # A scan of t is estimated at ~120 kB; a full projection doubles
        # that (scan + output), so a 150 kB budget rejects the wide query
        # while the count(*) (scan + one row) still fits.
        with service_for(db, memory_budget_bytes=150_000) as service:
            with pytest.raises(AdmissionError) as info:
                service.submit("SELECT g, x, o FROM t")
            assert info.value.reason == "over_budget"
            assert service.stats()["service"]["rejected"] == 1
            # The service still accepts queries that fit.
            tiny = service.submit("SELECT count(*) FROM t WHERE g = 99")
            assert tiny.result(timeout=30).rows() == [(0,)]

    def test_shutdown_rejects_new_queries(self):
        db = make_db(rows=100)
        service = service_for(db)
        service.shutdown()
        with pytest.raises(AdmissionError) as info:
            service.submit("SELECT count(*) FROM t")
        assert info.value.reason == "shutdown"

    def test_parse_error_surfaces_on_submit(self):
        db = make_db(rows=50)
        with service_for(db) as service:
            with pytest.raises(ReproError):
                service.submit("SELEKT nonsense")


# ---------------------------------------------------------------------------
# Cancellation and timeouts
# ---------------------------------------------------------------------------
SLOW_SQL = (
    "SELECT g, x, sum(x) OVER (PARTITION BY g ORDER BY o) AS c, "
    "median(x) OVER (PARTITION BY g) AS m FROM t"
)


class TestCancellation:
    def test_timeout_cancels_at_region_barrier(self):
        db = make_db()
        with service_for(db) as service:
            ticket = service.submit(SLOW_SQL, timeout=1e-6)
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=30)
            assert ticket.state == "cancelled"
            stats = service.stats()["service"]
            assert stats["cancelled"] == 1
            assert stats["timeouts"] == 1
            # The service stays healthy: a follow-up query runs fine.
            follow = service.submit("SELECT count(*) FROM t")
            assert follow.result(timeout=30).rows() == [(3000,)]

    def test_timeout_frees_spill_files(self, tmp_path):
        db = make_db(rows=20000)
        spill_config = db.config.clone(
            memory_budget_bytes=2048, spill_directory=str(tmp_path)
        )
        # Sanity: this workload really spills when run to completion.
        traced = db.sql(
            "SELECT g, median(x) FROM t GROUP BY g",
            config=spill_config.clone(collect_trace=True),
        )
        assert "spill" in [r.operator for r in traced.trace.records]
        with service_for(db) as service:
            ticket = service.submit(
                SLOW_SQL, config=spill_config, timeout=0.02
            )
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=60)
        # Cancellation ran the engine's cleanup path: nothing left on disk.
        leftovers = [
            os.path.join(root, name)
            for root, _, names in os.walk(tmp_path)
            for name in names
        ]
        assert leftovers == []

    def test_cancel_queued_query(self):
        db = make_db(rows=30000)
        with service_for(db, max_concurrent=1) as service:
            running = service.submit(SLOW_SQL, use_result_cache=False)
            queued = service.submit(
                "SELECT count(*) FROM t", use_result_cache=False
            )
            assert service.cancel(queued.query_id) is True
            with pytest.raises(QueryCancelled):
                queued.result(timeout=30)
            assert queued.state == "cancelled"
            # The running query is unaffected.
            assert len(running.result(timeout=120).rows()) == 30000

    def test_cancel_running_query(self):
        db = make_db(rows=60000)
        with service_for(db) as service:
            ticket = service.submit(SLOW_SQL, use_result_cache=False)
            deadline = time.monotonic() + 30
            while ticket.state == "queued" and time.monotonic() < deadline:
                time.sleep(0.001)
            assert service.cancel(ticket.query_id) is True
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=60)
            assert ticket.state == "cancelled"

    def test_cancel_unknown_id(self):
        db = make_db(rows=10)
        with service_for(db) as service:
            assert service.cancel("q999") is False


# ---------------------------------------------------------------------------
# Result cache and invalidation
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_hit_returns_same_result_object(self):
        db = make_db(rows=500)
        with service_for(db) as service:
            session = service.session()
            first = session.execute("SELECT g, sum(x) FROM t GROUP BY g")
            second = session.execute("SELECT g, sum(x) FROM t GROUP BY g")
            assert second is first  # served from the result cache
            assert service.stats()["service"]["result_cache_hits"] == 1

    def test_dml_invalidates_result_cache(self):
        db = make_db(rows=100)
        with service_for(db) as service:
            session = service.session()
            sql = "SELECT count(*) FROM t"
            assert session.execute(sql).rows() == [(100,)]
            db.insert("t", {"g": [1], "x": [0.5], "o": [100]})
            assert session.execute(sql).rows() == [(101,)]

    def test_ddl_invalidates_result_cache(self):
        db = make_db(rows=50)
        with service_for(db) as service:
            session = service.session()
            sql = "SELECT count(*) FROM t"
            session.execute(sql)
            db.create_table("other", {"a": "int64"})  # bumps catalog version
            session.execute(sql)
            assert service.stats()["service"].get("result_cache_hits", 0) == 0

    def test_opt_out_bypasses_cache(self):
        db = make_db(rows=100)
        with service_for(db) as service:
            session = service.session()
            sql = "SELECT g, sum(x) FROM t GROUP BY g"
            first = session.execute(sql, use_result_cache=False)
            second = session.execute(sql, use_result_cache=False)
            assert second is not first
            assert service.stats()["service"].get("result_cache_hits", 0) == 0

    def test_engine_scoped_keys(self):
        db = make_db(rows=100)
        with service_for(db) as service:
            session = service.session()
            sql = "SELECT g, sum(x) FROM t GROUP BY g"
            a = session.execute(sql, engine="lolepop")
            b = session.execute(sql, engine="monolithic")
            assert b is not a
            assert normalized_rows(a) == normalized_rows(b)


# ---------------------------------------------------------------------------
# Sessions and prepared statements
# ---------------------------------------------------------------------------
class TestSessions:
    def test_session_config_overrides(self):
        db = make_db(rows=100)
        with service_for(db) as service:
            session = service.session(num_threads=3)
            assert session.engine_config().num_threads == 3
            assert db.config.num_threads == 2  # base config untouched
            session.set_option(num_threads=5)
            assert session.engine_config().num_threads == 5

    def test_prepared_statements(self):
        db = make_db(rows=200)
        with service_for(db) as service:
            session = service.session()
            session.prepare("topg", "SELECT g, sum(x) FROM t GROUP BY g")
            assert session.prepared_names() == ["topg"]
            expected = db.sql("SELECT g, sum(x) FROM t GROUP BY g").rows()
            assert session.execute_prepared("topg").rows() == expected
            with pytest.raises(ReproError):
                session.execute_prepared("missing")

    def test_closed_session_rejects_submissions(self):
        db = make_db(rows=10)
        with service_for(db) as service:
            session = service.session()
            session.close()
            with pytest.raises(ReproError):
                session.execute("SELECT count(*) FROM t")

    def test_default_timeout_applies(self):
        db = make_db(rows=30000)
        with service_for(db) as service:
            session = service.session(default_timeout=1e-6)
            with pytest.raises(QueryCancelled):
                session.execute(SLOW_SQL)


# ---------------------------------------------------------------------------
# Catalog versioning (plan/result-cache invalidation signal)
# ---------------------------------------------------------------------------
class TestCatalogVersion:
    def test_ddl_and_dml_bump_version(self):
        db = Database()
        v0 = db.catalog.version
        db.create_table("a", {"x": "int64"})
        v1 = db.catalog.version
        assert v1 > v0
        db.insert("a", {"x": [1, 2, 3]})
        v2 = db.catalog.version
        assert v2 > v1
        db.table("a").truncate()
        v3 = db.catalog.version
        assert v3 > v2
        db.drop_table("a")
        assert db.catalog.version > v3

    def test_reads_do_not_bump_version(self):
        db = make_db(rows=50)
        before = db.catalog.version
        db.sql("SELECT g, sum(x) FROM t GROUP BY g")
        assert db.catalog.version == before


# ---------------------------------------------------------------------------
# Differential: service results are byte-identical to direct execution
# ---------------------------------------------------------------------------
DIFF_QUERIES = [
    "SELECT g, median(x), sum(x) FROM t GROUP BY g",
    "SELECT g, percentile_disc(0.25) WITHIN GROUP (ORDER BY x) FROM t "
    "GROUP BY g",
    "SELECT count(*) FROM t WHERE g < 3",
    "SELECT g, x, o FROM t ORDER BY x, o LIMIT 7",
    "SELECT g, o, sum(x) OVER (PARTITION BY g ORDER BY o) AS c FROM t "
    "ORDER BY o LIMIT 11",
    "SELECT t1.g, count(*) FROM t t1 JOIN t t2 "
    "ON t1.o = t2.o AND t1.g < 2 GROUP BY t1.g",
]


class TestConcurrentDifferential:
    @pytest.mark.parametrize("caches", ["on", "off"])
    def test_eight_clients_byte_identical(self, caches):
        db = make_db(rows=1500, plan_cache_size=256 if caches == "on" else 0)
        # References from the plain single-caller API, identical config.
        expected = {sql: db.sql(sql).rows() for sql in DIFF_QUERIES}
        mismatches = []
        errors = []
        use_result_cache = caches == "on"

        with service_for(
            db,
            max_concurrent=4,
            max_queue=256,
            result_cache_size=64 if use_result_cache else 0,
        ) as service:

            def client(index):
                session = service.session()
                rng = np.random.default_rng(index)
                try:
                    for _ in range(8):
                        sql = DIFF_QUERIES[
                            int(rng.integers(len(DIFF_QUERIES)))
                        ]
                        rows = session.execute(
                            sql,
                            timeout=120,
                            use_result_cache=use_result_cache,
                        ).rows()
                        if rows != expected[sql]:
                            mismatches.append(sql)
                except Exception as error:  # noqa: BLE001
                    errors.append(repr(error))

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            assert not any(t.is_alive() for t in threads), "client deadlock"
        assert errors == []
        assert mismatches == []

    def test_tpch_under_concurrency(self, tpch_db):
        from repro.tpch import TPCH_QUERIES

        queries = [
            TPCH_QUERIES["q1"],
            TPCH_QUERIES["q6"],
            "SELECT o_orderpriority, count(*) FROM orders "
            "GROUP BY o_orderpriority",
            "SELECT l_returnflag, median(l_extendedprice) FROM lineitem "
            "GROUP BY l_returnflag",
        ]
        expected = {sql: tpch_db.sql(sql).rows() for sql in queries}
        failures = []
        with service_for(tpch_db, max_concurrent=4, max_queue=256) as service:

            def client(index):
                session = service.session()
                try:
                    for round_no in range(4):
                        sql = queries[(index + round_no) % len(queries)]
                        rows = session.execute(sql, timeout=120).rows()
                        if rows != expected[sql]:
                            failures.append(("mismatch", sql))
                except Exception as error:  # noqa: BLE001
                    failures.append(("error", repr(error)))

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            assert not any(t.is_alive() for t in threads), "client deadlock"
        assert failures == []


# ---------------------------------------------------------------------------
# Metrics primitives under contention (GLOBAL_METRICS hammer)
# ---------------------------------------------------------------------------
class TestMetricsThreadSafety:
    N_THREADS = 8
    N_OPS = 2000

    def _hammer(self, fn):
        barrier = threading.Barrier(self.N_THREADS)

        def work():
            barrier.wait()
            for _ in range(self.N_OPS):
                fn()

        threads = [
            threading.Thread(target=work) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_no_lost_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer.count")
        self._hammer(lambda: counter.inc())
        assert counter.value == self.N_THREADS * self.N_OPS

    def test_gauge_add_no_lost_updates(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hammer.gauge")
        self._hammer(lambda: gauge.add(1.0))
        assert gauge.value == self.N_THREADS * self.N_OPS

    def test_histogram_consistent_totals(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hammer.hist")
        self._hammer(lambda: histogram.observe(0.001))
        expected = self.N_THREADS * self.N_OPS
        assert histogram.total == expected
        assert sum(histogram.counts) == expected
        assert histogram.sum == pytest.approx(0.001 * expected)
