"""Tests for the public Database API."""

import numpy as np
import pytest

from repro import Database, EngineConfig, ReproError


@pytest.fixture
def db():
    database = Database(num_threads=2)
    database.create_table("t", {"k": "int64", "v": "float64"})
    database.insert("t", {"k": [1, 1, 2], "v": [0.5, 1.5, 9.0]})
    return database


class TestCatalogApi:
    def test_create_insert_query(self, db):
        result = db.sql("SELECT k, sum(v) FROM t GROUP BY k")
        assert sorted(result.rows()) == [(1, 2.0), (2, 9.0)]

    def test_insert_numpy_fast_path(self, db):
        db.create_table("u", {"x": "int64"})
        db.insert("u", {"x": np.arange(5)})
        assert db.table("u").num_rows == 5

    def test_drop_table(self, db):
        db.drop_table("t")
        with pytest.raises(Exception):
            db.table("t")

    def test_schema_as_pairs(self, db):
        table = db.create_table("p", [("a", "int64"), ("b", "string")])
        assert table.schema.names() == ["a", "b"]


class TestQueryApi:
    def test_engine_selection(self, db):
        for engine in ("lolepop", "monolithic", "naive", "columnar"):
            result = db.sql("SELECT sum(v) FROM t", engine=engine)
            assert result.rows() == [(11.0,)]

    def test_unknown_engine(self, db):
        with pytest.raises(ReproError):
            db.sql("SELECT 1 FROM t", engine="duckdb")

    def test_result_accessors(self, db):
        result = db.sql("SELECT k, sum(v) AS s FROM t GROUP BY k")
        assert result.schema.names() == ["k", "s"]
        assert len(result) == 2
        assert set(result.to_pydict()) == {"k", "s"}

    def test_result_times_populated(self, db):
        result = db.sql("SELECT sum(v) FROM t")
        assert result.serial_time > 0
        assert result.simulated_time > 0

    def test_config_override(self, db):
        config = EngineConfig(num_threads=4, collect_trace=True)
        result = db.sql("SELECT k, sum(v) FROM t GROUP BY k", config=config)
        assert result.trace is not None
        assert result.trace.records

    def test_explain_logical(self, db):
        text = db.explain("SELECT k, sum(v) FROM t GROUP BY k")
        assert "AGGREGATE" in text and "SCAN t" in text

    def test_explain_lolepop(self, db):
        text = db.explain_lolepop("SELECT k, median(v) FROM t GROUP BY k")
        assert "PARTITION" in text and "ORDAGG" in text

    def test_explain_lolepop_no_stats(self, db):
        assert "no statistics region" in db.explain_lolepop("SELECT k FROM t")

    def test_dags_recorded(self, db):
        result = db.sql("SELECT k, median(v) FROM t GROUP BY k")
        assert len(result.dags) == 1
        assert "ORDAGG" in result.dags[0].operator_names()
