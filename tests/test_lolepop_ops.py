"""Direct tests of the transform LOLEPOPs (PARTITION/SORT/MERGE/SCAN/COMBINE)."""


from repro.execution import EngineConfig, ExecutionContext
from repro.expr.nodes import ColumnRef
from repro.lolepop import (
    CombineOp,
    MergeOp,
    PartitionOp,
    ScanOp,
    SortOp,
    SourceOp,
)
from repro.storage import Batch, TupleBuffer
from repro.types import Schema

SCHEMA = Schema.of(("k", "int64"), ("v", "float64"))


def ctx(threads=2, **kw):
    return ExecutionContext(EngineConfig(num_threads=threads, num_partitions=4, **kw))


def source(batches):
    return SourceOp(lambda: batches)


def make_batch(ks, vs):
    return Batch.from_pydict(SCHEMA, {"k": ks, "v": vs})


def run(op, context, inputs):
    return op.execute(context, inputs)


class TestPartitionOp:
    def test_hash_partitioning(self):
        c = ctx()
        src = source([make_batch([1, 2, 3], [0.1, 0.2, 0.3]),
                      make_batch([1, 4], [0.4, 0.5])])
        op = PartitionOp(src, ("k",), 4)
        buffer = run(op, c, [src.execute(c, [])])
        assert isinstance(buffer, TupleBuffer)
        assert buffer.num_rows == 5
        assert buffer.partitioned_by == ("k",)

    def test_compaction_single_chunk(self):
        c = ctx()
        batches = [make_batch([1], [0.1]), make_batch([1], [0.2])]
        src = source(batches)
        op = PartitionOp(src, ("k",), 2, compact=True)
        buffer = run(op, c, [batches])
        for partition in buffer.partitions:
            assert partition.is_compacted

    def test_round_robin_without_keys(self):
        c = ctx()
        batches = [make_batch([i], [0.0]) for i in range(6)]
        op = PartitionOp(source(batches), (), 3)
        buffer = run(op, c, [batches])
        assert [p.num_rows for p in buffer.partitions] == [2, 2, 2]


class TestSortOp:
    def make_buffer(self):
        buffer = TupleBuffer(SCHEMA, 2, ("k",))
        buffer.append_partitioned(
            make_batch([3, 1, 2, 1], [0.3, 0.1, 0.2, 0.4])
        )
        return buffer

    def test_sorts_each_partition(self):
        c = ctx()
        buffer = self.make_buffer()
        op = SortOp(source([]), [("k", False), ("v", False)])
        out = run(op, c, [buffer])
        assert out is buffer  # in place!
        for partition in buffer.partitions:
            rows = list(partition.ordered_batch().rows())
            assert rows == sorted(rows)

    def test_sets_ordering_property(self):
        c = ctx()
        buffer = self.make_buffer()
        run(SortOp(source([]), [("v", True)]), c, [buffer])
        assert buffer.ordered_by == (("v", True),)

    def test_elision_when_prefix_satisfied(self):
        c = ctx()
        buffer = self.make_buffer()
        run(SortOp(source([]), [("k", False), ("v", False)]), c, [buffer])
        work_before = c.serial_time
        # Re-sorting by a prefix is a no-op.
        run(SortOp(source([]), [("k", False)]), c, [buffer])
        assert c.serial_time == work_before

    def test_no_elision_when_disabled(self):
        c = ctx(elide_sorts=False)
        buffer = self.make_buffer()
        run(SortOp(source([]), [("k", False)]), c, [buffer])
        before = c.serial_time
        run(SortOp(source([]), [("k", False)]), c, [buffer])
        assert c.serial_time > before

    def test_permutation_mode(self):
        c = ctx()
        buffer = self.make_buffer()
        run(SortOp(source([]), [("v", False)], mode="permutation"), c, [buffer])
        assert any(p.permutation is not None for p in buffer.partitions if p.num_rows > 1)


class TestMergeOp:
    def sorted_buffer(self):
        buffer = TupleBuffer(SCHEMA, 3, ("k",))
        buffer.append_partitioned(
            make_batch([5, 3, 1, 4, 2, 6], [0.5, 0.3, 0.1, 0.4, 0.2, 0.6])
        )
        for partition in buffer.partitions:
            partition.sort_inplace(["v"], [False])
        buffer.set_ordering((("v", False),))
        return buffer

    def test_global_order(self):
        c = ctx()
        buffer = self.sorted_buffer()
        out = run(MergeOp(source([]), [("v", False)]), c, [buffer])
        values = [v for _, v in out.partitions[0].ordered_batch().rows()]
        assert values == sorted(values)
        assert out.num_partitions == 1

    def test_limit_hint_truncates(self):
        c = ctx()
        buffer = self.sorted_buffer()
        out = run(MergeOp(source([]), [("v", False)], limit_hint=2), c, [buffer])
        assert out.num_rows == 2
        values = [v for _, v in out.partitions[0].ordered_batch().rows()]
        assert values == [0.1, 0.2]

    def test_descending_merge(self):
        c = ctx()
        buffer = TupleBuffer(SCHEMA, 2, ("k",))
        buffer.append_partitioned(make_batch([1, 2, 3, 4], [1.0, 4.0, 3.0, 2.0]))
        for partition in buffer.partitions:
            partition.sort_inplace(["v"], [True])
        out = run(MergeOp(source([]), [("v", True)]), c, [buffer])
        values = [v for _, v in out.partitions[0].ordered_batch().rows()]
        assert values == sorted(values, reverse=True)


class TestScanOp:
    def test_stream_buffer_with_projection(self):
        c = ctx()
        buffer = TupleBuffer(SCHEMA, 1)
        buffer.partitions[0].append(make_batch([1, 2], [0.5, 1.5]))
        out_schema = Schema.of(("double_v", "float64"))
        op = ScanOp(
            source([]),
            project=[("double_v", ColumnRef("v") + ColumnRef("v"))],
            project_schema=out_schema,
        )
        batches = run(op, c, [buffer])
        assert batches[0].schema.names() == ["double_v"]
        assert batches[0].column("double_v").to_pylist() == [1.0, 3.0]

    def test_limit_offset(self):
        c = ctx()
        buffer = TupleBuffer(SCHEMA, 1)
        buffer.partitions[0].append(make_batch([1, 2, 3, 4], [1, 2, 3, 4]))
        op = ScanOp(source([]), limit=2, offset=1)
        batches = run(op, c, [buffer])
        assert [k for b in batches for k, _ in b.rows()] == [2, 3]


class TestCombineOp:
    def test_join_mode_outer_joins_groups(self):
        c = ctx()
        a = [Batch.from_pydict(
            Schema.of(("k", "int64"), ("x", "int64")), {"k": [1, 2], "x": [10, 20]}
        )]
        b = [Batch.from_pydict(
            Schema.of(("k", "int64"), ("y", "int64")), {"k": [2, 3], "y": [200, 300]}
        )]
        op = CombineOp([source(a), source(b)], key_names=["k"], mode="join")
        buffer = run(op, c, [a, b])
        rows = sorted(buffer.to_batch().rows())
        assert rows == [(1, 10, None), (2, 20, 200), (3, None, 300)]

    def test_join_mode_empty_keys_single_group(self):
        c = ctx()
        a = [Batch.from_pydict(Schema.of(("x", "int64")), {"x": [5]})]
        b = [Batch.from_pydict(Schema.of(("y", "int64")), {"y": [7]})]
        op = CombineOp([source(a), source(b)], key_names=[], mode="join")
        buffer = run(op, c, [a, b])
        assert list(buffer.to_batch().rows()) == [(5, 7)]

    def test_union_mode_null_extension_and_grouping_id(self):
        c = ctx()
        key_schema = Schema.of(("a", "int64"), ("b", "int64"))
        full = [Batch.from_pydict(
            Schema.of(("a", "int64"), ("b", "int64"), ("s", "int64")),
            {"a": [1], "b": [2], "s": [30]},
        )]
        partial = [Batch.from_pydict(
            Schema.of(("a", "int64"), ("s", "int64")), {"a": [1], "s": [99]}
        )]
        op = CombineOp(
            [source(full), source(partial)],
            key_names=["a", "b"],
            mode="union",
            union_keys=[("a", "b"), ("a",)],
            grouping_ids=[0, 1],
            union_key_schema=key_schema,
        )
        buffer = run(op, c, [full, partial])
        rows = sorted(buffer.to_batch().rows(), key=str)
        assert (1, 2, 30, 0) in rows
        assert (1, None, 99, 1) in rows
