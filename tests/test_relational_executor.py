"""Tests for the relational pipeline executor (scan/filter/project fusion,
joins, union) used underneath every statistics region."""

import pytest

from repro.execution import EngineConfig, ExecutionContext
from repro.logical import Filter, Join, JoinKind, Project, Scan, UnionAll
from repro.expr.nodes import BinaryOp, ColumnRef, Literal
from repro.relational import RelationalExecutor
from repro.storage import Batch, Catalog
from repro.types import DataType


@pytest.fixture
def setup():
    catalog = Catalog()
    t = catalog.create_table("t", {"a": "int64", "b": "int64"})
    t.insert_pydict({"a": list(range(10)), "b": [i * 10 for i in range(10)]})
    u = catalog.create_table("u", {"a": "int64", "c": "string"})
    u.insert_pydict({"a": [2, 4, 4, 99], "c": ["x", "y", "z", "w"]})
    context = ExecutionContext(EngineConfig(num_threads=2, morsel_size=4))
    return catalog, context


def rows_of(batches):
    return sorted(Batch.concat(batches).rows())


class TestMapChains:
    def test_scan_produces_morsels(self, setup):
        catalog, context = setup
        executor = RelationalExecutor(catalog, context)
        batches = executor.execute(Scan("t", catalog.get("t").schema))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_filter_project_fused(self, setup):
        catalog, context = setup
        scan = Scan("t", catalog.get("t").schema)
        gt = Filter(scan, BinaryOp(">", ColumnRef("a"), Literal(5, DataType.INT64)))
        plan = Project(gt, [("a2", ColumnRef("a") + ColumnRef("a"))])
        executor = RelationalExecutor(catalog, context)
        assert rows_of(executor.execute(plan)) == [(12,), (14,), (16,), (18,)]
        # One fused region, not one per operator.
        operators = {r.operator for r in (context.trace.records if context.trace else [])}
        # no trace configured; just ensure results correct

    def test_empty_filter_result(self, setup):
        catalog, context = setup
        scan = Scan("t", catalog.get("t").schema)
        plan = Filter(scan, BinaryOp(">", ColumnRef("a"), Literal(100, DataType.INT64)))
        executor = RelationalExecutor(catalog, context)
        batches = executor.execute(plan)
        assert sum(len(b) for b in batches) == 0
        assert batches[0].schema.names() == ["a", "b"]


class TestJoins:
    def test_inner_join(self, setup):
        catalog, context = setup
        plan = Join(
            Scan("t", catalog.get("t").schema),
            Scan("u", catalog.get("u").schema),
            JoinKind.INNER,
            ["a"], ["a"],
        )
        executor = RelationalExecutor(catalog, context)
        got = rows_of(executor.execute(plan))
        assert got == [(2, 20, 2, "x"), (4, 40, 4, "y"), (4, 40, 4, "z")]

    def test_semi_and_anti(self, setup):
        catalog, context = setup
        executor = RelationalExecutor(catalog, context)
        semi = Join(
            Scan("t", catalog.get("t").schema),
            Scan("u", catalog.get("u").schema),
            JoinKind.SEMI, ["a"], ["a"],
        )
        assert [r[0] for r in rows_of(executor.execute(semi))] == [2, 4]
        anti = Join(
            Scan("t", catalog.get("t").schema),
            Scan("u", catalog.get("u").schema),
            JoinKind.ANTI, ["a"], ["a"],
        )
        assert len(rows_of(executor.execute(anti))) == 8

    def test_left_join_pads(self, setup):
        catalog, context = setup
        executor = RelationalExecutor(catalog, context)
        left = Join(
            Scan("t", catalog.get("t").schema),
            Scan("u", catalog.get("u").schema),
            JoinKind.LEFT, ["a"], ["a"],
        )
        got = rows_of(executor.execute(left))
        assert len(got) == 11  # 10 left rows, one double match
        assert (0, 0, None, None) in got


class TestUnionAll:
    def test_concatenates(self, setup):
        catalog, context = setup
        scan = Scan("t", catalog.get("t").schema)
        plan = UnionAll([scan, scan])
        executor = RelationalExecutor(catalog, context)
        assert sum(len(b) for b in executor.execute(plan)) == 20

    def test_stats_node_without_handler_raises(self, setup):
        from repro.errors import ExecutionError
        from repro.logical import Sort

        catalog, context = setup
        plan = Sort(Scan("t", catalog.get("t").schema), [("a", False)])
        executor = RelationalExecutor(catalog, context)
        with pytest.raises(ExecutionError):
            executor.execute(plan)
