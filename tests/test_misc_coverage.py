"""Coverage for smaller corners: scalar function kernels, frame validation,
aggregate specs, explain output, and error paths."""

import datetime

import pytest

from repro import Database
from repro.aggregates import (
    AggKind,
    AggregateCall,
    FrameBound,
    FrameSpec,
    WindowCall,
    is_aggregate_name,
    is_window_name,
    lookup,
)
from repro.errors import BindError, NotSupportedError
from repro.expr import FuncCall, col, evaluate, evaluate_row, lit
from repro.storage import Batch
from repro.types import DataType, Schema


class TestScalarFunctionKernels:
    SCHEMA = Schema.of(("x", "float64"), ("n", "int64"), ("s", "string"))

    def batch(self):
        return Batch.from_pydict(
            self.SCHEMA,
            {"x": [4.0, 2.25, -1.0], "n": [7, -3, 0], "s": ["Ab", "cd", "EF"]},
        )

    def both(self, expr):
        batch = self.batch()
        vector = evaluate(expr, batch).to_pylist()
        rows = [
            {"x": x, "n": n, "s": s}
            for x, n, s in zip(*[c.to_pylist() for c in batch.columns])
        ]
        scalar = [evaluate_row(expr, row) for row in rows]
        norm = lambda v: round(v, 9) if isinstance(v, float) else v  # noqa
        assert [norm(v) for v in vector] == [norm(v) for v in scalar]
        return vector

    def test_sqrt_ln_exp(self):
        assert self.both(FuncCall("sqrt", [col("x")]))[0] == 2.0
        assert self.both(FuncCall("exp", [lit(0.0)]))[0] == 1.0
        assert self.both(FuncCall("ln", [lit(1.0)]))[0] == 0.0

    def test_floor_ceil_round_sign_mod(self):
        assert self.both(FuncCall("floor", [col("x")])) == [4.0, 2.0, -1.0]
        assert self.both(FuncCall("ceil", [col("x")])) == [4.0, 3.0, -1.0]
        assert self.both(FuncCall("round", [col("x"), lit(1)])) == [4.0, 2.2, -1.0]
        assert self.both(FuncCall("sign", [col("n")])) == [1, -1, 0]
        assert self.both(FuncCall("mod", [col("n"), lit(4)])) == [3, 1, 0]

    def test_greatest_least(self):
        assert self.both(FuncCall("greatest", [col("n"), lit(1)])) == [7, 1, 1]
        assert self.both(FuncCall("least", [col("n"), lit(1)])) == [1, -3, 0]

    def test_string_kernels(self):
        assert self.both(FuncCall("lower", [col("s")])) == ["ab", "cd", "ef"]
        assert self.both(FuncCall("upper", [col("s")])) == ["AB", "CD", "EF"]
        assert self.both(
            FuncCall("substr", [col("s"), lit(1), lit(1)])
        ) == ["A", "c", "E"]
        assert self.both(FuncCall("concat", [col("s"), lit("!")])) == [
            "Ab!", "cd!", "EF!",
        ]


class TestFrameSpec:
    def test_range_offsets_rejected(self):
        with pytest.raises(BindError):
            FrameSpec(
                FrameBound.PRECEDING, 2, FrameBound.CURRENT_ROW, 0, mode="range"
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(BindError):
            FrameSpec(mode="groups")

    def test_repr_shows_mode(self):
        assert repr(FrameSpec.running_range()).startswith("RANGE")
        assert repr(FrameSpec.running()).startswith("ROWS")

    def test_equality_includes_mode(self):
        assert FrameSpec.running() != FrameSpec.running_range()


class TestAggregateSpecs:
    def test_lookup_kinds(self):
        assert lookup("sum").kind is AggKind.ASSOCIATIVE
        assert lookup("percentile_disc").kind is AggKind.ORDERED_SET
        assert lookup("avg").kind is AggKind.COMPOSED
        assert lookup("lag").kind is AggKind.WINDOW_ONLY

    def test_name_classifiers(self):
        assert is_aggregate_name("sum")
        assert not is_aggregate_name("row_number")
        assert is_window_name("row_number")
        assert not is_window_name("abs")

    def test_unknown_rejected(self):
        with pytest.raises(BindError):
            lookup("frobnicate")

    def test_call_reprs(self):
        call = AggregateCall("out", "sum", [col("x")], distinct=True)
        assert "DISTINCT" in repr(call)
        window = WindowCall(
            "w", "sum", [col("x")], partition_by=[col("p")],
            order_by=[(col("o"), True)], frame=FrameSpec.running(),
        )
        text = repr(window)
        assert "PARTITION BY" in text and "DESC" in text and "ROWS" in text

    def test_result_types(self):
        assert lookup("count").result_type([DataType.STRING]) is DataType.INT64
        assert lookup("avg").result_type([DataType.INT64]) is DataType.FLOAT64
        assert lookup("min").result_type([DataType.DATE]) is DataType.DATE


class TestErrorPaths:
    @pytest.fixture
    def db(self):
        database = Database()
        database.create_table("t", {"a": "int64", "s": "string"})
        database.insert("t", {"a": [1, 2], "s": ["x", "y"]})
        return database

    def test_semi_join_residual_rejected(self, db):
        db.create_table("u", {"a": "int64", "b": "int64"})
        with pytest.raises(NotSupportedError):
            db.plan("SELECT 1 FROM t SEMI JOIN u ON t.a = u.a AND t.a < u.b")

    def test_distinct_with_grouping_sets_rejected(self, db):
        with pytest.raises(NotSupportedError):
            db.sql(
                "SELECT a, count(DISTINCT s) FROM t "
                "GROUP BY GROUPING SETS ((a), ())"
            )

    def test_exists_with_group_by_rejected(self, db):
        db.create_table("v", {"a": "int64"})
        with pytest.raises(NotSupportedError):
            db.plan(
                "SELECT a FROM t WHERE EXISTS "
                "(SELECT a FROM v GROUP BY a HAVING count(*) > 1)"
            )

    def test_window_in_group_by_query_select_rejected(self, db):
        with pytest.raises(BindError):
            db.plan(
                "SELECT a, row_number() OVER (ORDER BY a) FROM t GROUP BY a"
            )

    def test_date_arithmetic_end_to_end(self, db):
        db.create_table("d", {"day": "date"})
        db.insert("d", {"day": [datetime.date(1995, 6, 17)]})
        rows = db.sql("SELECT day - 1 AS prev FROM d").rows()
        assert rows == [(datetime.date(1995, 6, 16),)]

    def test_explain_renders_every_operator(self, db):
        db.create_table("m", {"a": "int64"})
        text = db.explain(
            "SELECT t.a, count(*) FROM t JOIN m ON t.a = m.a "
            "WHERE t.a > 0 GROUP BY t.a ORDER BY t.a LIMIT 1"
        )
        for token in ("SCAN", "JOIN", "FILTER", "AGGREGATE", "SORT", "LIMIT"):
            assert token in text


def test_paper_plans_example(capsys):
    """The plan-rendering example runs and shows every figure."""
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "paper_plans_example",
        os.path.join(
            os.path.dirname(__file__), "..", "examples", "paper_plans.py"
        ),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert "Figure 1" in out and "LOLEPOP DAG" in out
    assert out.count("PARTITION") >= 4
