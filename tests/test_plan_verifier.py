"""Mutation tests for the static plan verifier.

Reuses the random-plan corpus of :mod:`tests.test_parallel_property`
(same seed, same generators) plus a small crafted corpus of multi-ordering
aggregates, and checks both directions of the verifier's contract:

* **Zero false positives** — every uncorrupted plan the translator and
  optimizer produce verifies clean, in serial and parallel mode.
* **100% catch rate** — four kinds of deliberate plan corruption (dropped
  anti-dependency edges, wrong sort keys, a spliced-out PARTITION, a
  COMBINE that lost its uniqueness keys) are each detected with the right
  diagnostic code on every plan the corruption structurally applies to.

Each corruption translates a *fresh* DAG (``Dag.clone`` shares parameter
lists, so mutating a clone would corrupt the original's operators too).
"""

from __future__ import annotations

import gc
import random

import pytest

from repro import Database, EngineConfig
from repro.errors import ExecutionError, PlanError, PlanVerificationError
from repro.lolepop import (
    assert_all_registered,
    check_dag,
    contract_of,
    operator_name,
    registered_contracts,
)
from repro.lolepop.base import Lolepop, SourceOp
from repro.lolepop.combine_op import CombineOp
from repro.lolepop.engine import statistics_region
from repro.lolepop.merge_op import MergeOp
from repro.lolepop.ordagg_op import OrdAggOp
from repro.lolepop.partition_op import PartitionOp
from repro.lolepop.sort_op import SortOp
from repro.lolepop.translate import translate_statistics
from repro.lolepop.verify import _buffer_root
from repro.lolepop.window_op import WindowOp
from repro.server.cache import PreparedPlan
from repro.tpch import TPCH_QUERIES

from tests.test_parallel_property import SEED, _make_db, _plans

#: Multi-ordering aggregates: each needs two sorts over one shared buffer,
#: so the translator emits anti-dependency (``after``) edges and a
#: COMBINE(join) over the per-ordering ORDAGGs — the shapes the drop-after
#: and combine-uniqueness corruptions need.
MULTI_ORDERING_PLANS = [
    "SELECT g, percentile_disc(0.5) WITHIN GROUP (ORDER BY x) AS p1, "
    "percentile_cont(0.25) WITHIN GROUP (ORDER BY y) AS p2 FROM t GROUP BY g",
    "SELECT g, median(x) AS m1, median(y) AS m2 FROM t GROUP BY g",
    "SELECT g, h, median(x) AS m1, median(y) AS m2 FROM t GROUP BY g, h",
    "SELECT h, percentile_disc(0.5) WITHIN GROUP (ORDER BY x) AS p1, "
    "median(y) AS m1, count(*) AS c FROM t GROUP BY h",
    "SELECT g, percentile_cont(0.75) WITHIN GROUP (ORDER BY y) AS p1, "
    "median(x) AS m1, sum(x) AS s FROM t GROUP BY g",
]


@pytest.fixture(scope="module")
def corpus_db() -> Database:
    return _make_db(random.Random(SEED))


def _config(parallel: bool, verify: str = "off") -> EngineConfig:
    extra = (
        dict(num_threads=4, num_partitions=8, execution_mode="parallel")
        if parallel
        else {}
    )
    return EngineConfig(verify_plans=verify, **extra)


def _translate(db: Database, sql: str, parallel: bool = True):
    """A fresh, unverified DAG for the query's top statistics region."""
    region = statistics_region(db.plan(sql))
    if region is None:
        return None
    return translate_statistics(region, lambda p: [], _config(parallel))


def _codes(dag):
    diagnostics, _ = check_dag(dag)
    return diagnostics, {d.code for d in diagnostics}


# ---------------------------------------------------------------------------
# Zero false positives: every generated plan verifies clean as translated.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("case", _plans(), ids=lambda c: f"plan{c[0]}")
@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
def test_uncorrupted_corpus_verifies_clean(corpus_db, case, parallel):
    dag = _translate(corpus_db, case[1], parallel)
    if dag is None:
        pytest.skip("no statistics region")
    diagnostics, _ = check_dag(dag, require_rebindable=True)
    assert not diagnostics, (
        f"false positive on: {case[1]}\n"
        + "\n".join(d.render({}) for d in diagnostics)
    )


@pytest.mark.parametrize("sql", MULTI_ORDERING_PLANS)
def test_uncorrupted_multi_ordering_verifies_clean(corpus_db, sql):
    for parallel in (False, True):
        diagnostics, _ = check_dag(_translate(corpus_db, sql, parallel))
        assert not diagnostics, [d.render({}) for d in diagnostics]


# ---------------------------------------------------------------------------
# Corruption 1: drop anti-dependency edges -> buffer-reuse race.
# ---------------------------------------------------------------------------
def _input_ancestors(dag):
    """Ancestor sets over *data edges only* (what remains once every
    ``after`` edge is stripped)."""
    ancestors = {}
    for node in dag.topological_order():
        deps = set()
        for dep in node.inputs:
            deps.add(id(dep))
            deps |= ancestors.get(id(dep), set())
        ancestors[id(node)] = deps
    return ancestors


def _race_would_open(dag) -> bool:
    """Structurally (without invoking the diagnostic engine): does some
    in-place mutator share a buffer with an affected consumer such that
    only ``after`` edges order the two?"""
    order = dag.topological_order()
    contracts = {id(n): contract_of(n) for n in order}
    _, props = check_dag(dag)
    roots = {id(n): _buffer_root(n, contracts) for n in order}
    ancestors = _input_ancestors(dag)

    def buffer_roots(node):
        return {
            id(roots[id(dep)])
            for dep in node.inputs
            if props[id(dep)].kind == "buffer" and roots.get(id(dep)) is not None
        }

    for mutator in order:
        effect = contracts[id(mutator)].mutation_effect
        if effect is None:
            continue
        shared = buffer_roots(mutator)
        for consumer in order:
            if consumer is mutator or not (shared & buffer_roots(consumer)):
                continue
            contract = contracts[id(consumer)]
            affected = (
                contract.order_sensitive(consumer)
                if effect == "order"
                else contract.reads_full_schema(consumer)
            )
            if not affected:
                continue
            if (
                id(mutator) not in ancestors[id(consumer)]
                and id(consumer) not in ancestors[id(mutator)]
            ):
                return True
    return False


def test_dropped_after_edge_is_caught(corpus_db):
    applicable = 0
    for sql in MULTI_ORDERING_PLANS:
        dag = _translate(corpus_db, sql)
        if not any(node.after for node in dag.nodes):
            continue
        if not _race_would_open(dag):
            continue  # ordering also implied by data edges; dropping is safe
        applicable += 1
        for node in dag.nodes:
            node.after = []
        diagnostics, codes = _codes(dag)
        assert diagnostics, f"dropped after edges not caught on: {sql}"
        assert codes & {"race", "property"}, (sql, codes)
    assert applicable >= 4, f"only {applicable} plans exercised the race check"


# ---------------------------------------------------------------------------
# Corruption 2: wrong SORT keys -> downstream ordering requirement unmet.
# ---------------------------------------------------------------------------
def _corrupt_sort_keys(sort: SortOp) -> None:
    if len(sort.keys) >= 2:
        # Dropping the leading key breaks any group-prefix / exact-prefix
        # requirement downstream (permutation tolerance cannot save it).
        sort.keys = sort.keys[1:]
    else:
        name, desc = sort.keys[0]
        replacement = "g" if name.lower() != "g" else "h"
        sort.keys = [(replacement, desc)]


def test_corrupted_sort_keys_are_caught(corpus_db):
    applicable = 0
    for _, sql in _plans():
        dag = _translate(corpus_db, sql)
        if dag is None:
            continue
        target = next(
            (
                node
                for node in dag.topological_order()
                if isinstance(node, SortOp)
                and any(
                    node in consumer.inputs
                    for consumer in dag.nodes
                    if isinstance(consumer, (OrdAggOp, MergeOp, WindowOp))
                )
            ),
            None,
        )
        if target is None:
            continue
        applicable += 1
        _corrupt_sort_keys(target)
        diagnostics, codes = _codes(dag)
        assert "property" in codes, (
            f"corrupted sort keys not caught on: {sql}\n"
            + "\n".join(d.render({}) for d in diagnostics)
        )
    assert applicable >= 20, f"only {applicable} plans had a corruptible sort"


# ---------------------------------------------------------------------------
# Corruption 3: splice out a PARTITION -> kind mismatch (stream where a
# buffer is required).
# ---------------------------------------------------------------------------
def test_removed_partition_is_caught(corpus_db):
    applicable = 0
    for _, sql in _plans():
        dag = _translate(corpus_db, sql)
        if dag is None:
            continue
        target = next(
            (
                node
                for node in dag.topological_order()
                if isinstance(node, PartitionOp)
                and len(node.inputs) == 1
                and any(
                    node in consumer.inputs
                    and "stream" not in contract_of(consumer).consumes
                    for consumer in dag.nodes
                )
            ),
            None,
        )
        if target is None:
            continue
        applicable += 1
        dag.replace(target, target.inputs[0])
        diagnostics, codes = _codes(dag)
        assert codes & {"kind-mismatch", "property"}, (
            f"spliced-out PARTITION not caught on: {sql}\n"
            + "\n".join(d.render({}) for d in diagnostics)
        )
    assert applicable >= 20, f"only {applicable} plans had a removable PARTITION"


# ---------------------------------------------------------------------------
# Corruption 4: a COMBINE(join) that lost its keys -> inputs no longer
# provably unique on the join key.
# ---------------------------------------------------------------------------
def test_combine_without_unique_keys_is_caught(corpus_db):
    applicable = 0
    for sql in MULTI_ORDERING_PLANS + [s for _, s in _plans()]:
        dag = _translate(corpus_db, sql)
        if dag is None:
            continue
        _, props = check_dag(dag)
        target = next(
            (
                node
                for node in dag.topological_order()
                if isinstance(node, CombineOp)
                and node.mode == "join"
                and node.key_names
                and any(
                    props[id(dep)].unique_on
                    and not any(len(s) == 0 for s in props[id(dep)].unique_on)
                    for dep in node.inputs
                )
            ),
            None,
        )
        if target is None:
            continue
        applicable += 1
        target.key_names = []
        diagnostics, codes = _codes(dag)
        assert "property" in codes, (
            f"non-unique COMBINE input not caught on: {sql}\n"
            + "\n".join(d.render({}) for d in diagnostics)
        )
        assert any("unique" in d.message for d in diagnostics)
    assert applicable >= 4, f"only {applicable} plans had a corruptible COMBINE"


# ---------------------------------------------------------------------------
# Plan-cache integration: templates that cannot be rebound are rejected at
# insert time under strict mode — not on some later cache hit.
# ---------------------------------------------------------------------------
def test_cache_rejects_template_with_unrebindable_source(corpus_db):
    sql = "SELECT g, sum(x) AS s FROM t GROUP BY g"
    dag = _translate(corpus_db, sql)
    for node in dag.nodes:
        if isinstance(node, SourceOp):
            node.plan = None

    prepared = PreparedPlan(sql, None, None, 0)
    with pytest.raises(PlanVerificationError) as excinfo:
        prepared.store_template(("fp", 0), dag, _config(True, "strict"))
    assert any(
        d.code == "unrebindable-source" for d in excinfo.value.diagnostics
    )
    assert not prepared.dag_templates

    # Below strict the template is admitted — and the failure then surfaces
    # later, at rebind time, where it is no longer attributable.
    prepared.store_template(("fp", 0), dag, _config(True, "on"))
    template = prepared.dag_templates[("fp", 0)]
    source = next(n for n in template.nodes if isinstance(n, SourceOp))
    with pytest.raises(ExecutionError):
        source.rebind(lambda plan: [])


# ---------------------------------------------------------------------------
# Registry: the EXPLAIN legend and the verifier share one source of truth.
# ---------------------------------------------------------------------------
def test_registry_names_match_explain_legend(corpus_db):
    dag = _translate(
        corpus_db, "SELECT g, median(x) AS m FROM t GROUP BY g ORDER BY g"
    )
    legal = {contract.name for contract in registered_contracts()}
    assert set(dag.operator_names()) <= legal
    for node in dag.nodes:
        assert node.name() == operator_name(type(node))
        assert contract_of(node).name == node.name()


def test_unregistered_operator_raises():
    class RogueOp(Lolepop):
        pass

    try:
        with pytest.raises(PlanError):
            contract_of(RogueOp())
        with pytest.raises(PlanError):
            assert_all_registered()
    finally:
        # __subclasses__ holds weak references: dropping the class restores
        # a clean registry for every later assert_all_registered() caller.
        del RogueOp
        gc.collect()
    assert_all_registered()


def test_invalid_verify_mode_rejected():
    with pytest.raises(ValueError):
        EngineConfig(verify_plans="loud")


# ---------------------------------------------------------------------------
# TPC-H: every benchmark query translates and verifies clean under strict,
# serial and parallel; one executed query exercises the strict plan-cache
# path end to end (verified template insert + verified clone on hit).
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("qid", sorted(TPCH_QUERIES))
@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
def test_tpch_queries_verify_strict(tpch_db, qid, parallel):
    region = statistics_region(tpch_db.plan(TPCH_QUERIES[qid]))
    if region is None:
        pytest.skip("no statistics region")
    # translate_statistics re-verifies after translation and after every
    # optimizer pass under strict; a diagnostic raises here.
    dag = translate_statistics(
        region, lambda plan: [], _config(parallel, "strict")
    )
    diagnostics, _ = check_dag(dag, require_rebindable=True)
    assert not diagnostics, [d.render({}) for d in diagnostics]


def test_tpch_strict_execution_through_plan_cache(tpch_db):
    config = _config(True, "strict")
    first = tpch_db.sql(TPCH_QUERIES["q1"], config=config).rows()
    again = tpch_db.sql(TPCH_QUERIES["q1"], config=config).rows()
    assert first == again
