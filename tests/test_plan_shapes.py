"""Golden tests: LOLEPOP DAG shapes for the paper's Figure 1 and Figure 3.

These assert the *operator sequence* of each translated plan, which is what
the figures show. Regressions here mean the translation or an optimizer
pass changed behaviorally.
"""

import pytest

from repro import Database, EngineConfig


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "r",
        {
            "a": "int64", "b": "float64", "c": "float64", "d": "float64",
            "k": "int64", "n": "int64", "q": "float64",
        },
    )
    return database


def ops(db, sql, **config_kwargs):
    from repro.lolepop import LolepopEngine

    config = EngineConfig(**config_kwargs) if config_kwargs else db.config
    engine = LolepopEngine(db.catalog, config)
    dag_text = engine.explain(db.plan(sql))
    return [line.split()[1] for line in dag_text.splitlines()]


class TestFigure1:
    def test_median_avg_distinct_sum(self, db):
        """Figure 1: PARTITION/SORT/ORDAGG + HASHAGG/HASHAGG + COMBINE/SCAN."""
        sequence = ops(
            db, "SELECT median(a), avg(b), sum(DISTINCT c) FROM r GROUP BY d"
        )
        assert sequence == [
            "SOURCE", "PARTITION", "SORT", "ORDAGG",
            "HASHAGG", "HASHAGG", "COMBINE", "SCAN",
        ]


class TestFigure3:
    def test_plan_0_composed_shares_hashagg(self, db):
        """One HASHAGG computes var_pop, count, and sum together."""
        sequence = ops(db, "SELECT a, var_pop(b), count(b), sum(b) FROM r GROUP BY a")
        assert sequence == ["SOURCE", "HASHAGG", "SCAN"]

    def test_plan_1_grouping_sets_reaggregate(self, db):
        sequence = ops(
            db, "SELECT a, b, sum(c) FROM r GROUP BY GROUPING SETS ((a),(b),(a,b))"
        )
        assert sequence == [
            "SOURCE", "HASHAGG", "HASHAGG", "HASHAGG", "COMBINE", "SCAN",
        ]

    def test_plan_2_shared_buffer_resort(self, db):
        sequence = ops(
            db,
            "SELECT a, sum(b), sum(DISTINCT b), "
            "percentile_disc(0.5) WITHIN GROUP (ORDER BY c), "
            "percentile_disc(0.5) WITHIN GROUP (ORDER BY d) FROM r GROUP BY a",
        )
        assert sequence == [
            "SOURCE", "PARTITION", "SORT", "ORDAGG", "SORT", "ORDAGG",
            "HASHAGG", "HASHAGG", "COMBINE", "SCAN",
        ]

    def test_plan_3_order_by_reuses_window_buffer(self, db):
        sequence = ops(
            db,
            "SELECT row_number() OVER (PARTITION BY a ORDER BY b) AS rn, c "
            "FROM r ORDER BY c LIMIT 100",
        )
        assert sequence == [
            "SOURCE", "PARTITION", "SORT", "WINDOW", "SORT", "MERGE", "SCAN",
        ]

    def test_plan_4_mad(self, db):
        sequence = ops(db, "SELECT a, mad(b) FROM r GROUP BY a")
        assert sequence == [
            "SOURCE", "PARTITION", "SORT", "WINDOW", "SORT", "ORDAGG", "SCAN",
        ]

    def test_plan_5_mssd_no_resort(self, db):
        """The nested-window ordering is compatible with the group keys:
        no re-sort between WINDOW and ORDAGG."""
        sequence = ops(
            db,
            "SELECT b, sum(pow(lead(a) OVER (PARTITION BY b ORDER BY a) - a, 2)) "
            "/ nullif(count(*) - 1, 0) FROM r GROUP BY b",
        )
        assert sequence == [
            "SOURCE", "PARTITION", "SORT", "WINDOW", "ORDAGG", "SCAN",
        ]


class TestAntiDependencies:
    def test_resort_waits_for_first_ordagg(self, db):
        """The second SORT of Figure 3 plan 2 carries an `after` edge on the
        first ORDAGG (the buffer is reordered in place)."""
        from repro.lolepop import LolepopEngine

        engine = LolepopEngine(db.catalog, db.config)
        text = engine.explain(
            db.plan(
                "SELECT a, percentile_disc(0.5) WITHIN GROUP (ORDER BY c), "
                "percentile_disc(0.5) WITHIN GROUP (ORDER BY d) FROM r GROUP BY a"
            )
        )
        resort_lines = [
            line for line in text.splitlines()
            if "SORT" in line and "after" in line
        ]
        assert len(resort_lines) == 1


class TestOptimizerFlags:
    def test_redundant_combine_removed(self, db):
        with_pass = ops(db, "SELECT a, sum(b) FROM r GROUP BY a")
        assert "COMBINE" not in with_pass
        without = ops(
            db, "SELECT a, sum(b) FROM r GROUP BY a",
            remove_redundant_combines=False,
        )
        assert "COMBINE" in without

    def test_buffer_reuse_flag(self, db):
        shared = ops(
            db,
            "SELECT a, percentile_disc(0.5) WITHIN GROUP (ORDER BY c), "
            "sum(DISTINCT c) FROM r GROUP BY a",
        )
        # With reuse, the distinct sum folds into the sorted key range:
        # no extra HASHAGG pair.
        assert shared.count("HASHAGG") == 0
        unshared = ops(
            db,
            "SELECT a, percentile_disc(0.5) WITHIN GROUP (ORDER BY c), "
            "sum(DISTINCT c) FROM r GROUP BY a",
            reuse_buffers=False,
        )
        assert unshared.count("HASHAGG") == 2

    def test_sort_elision_flag(self, db):
        base = ops(
            db,
            "SELECT b, sum(pow(lead(a) OVER (PARTITION BY b ORDER BY a) - a, 2)) "
            "FROM r GROUP BY b",
        )
        assert base.count("SORT") == 1
        noelide = ops(
            db,
            "SELECT b, sum(pow(lead(a) OVER (PARTITION BY b ORDER BY a) - a, 2)) "
            "FROM r GROUP BY b",
            elide_sorts=False,
        )
        assert noelide.count("SORT") == 2
