"""Tests for statistics collection, cardinality estimation, and the
cost-based DISTINCT decision (paper §7 future work)."""

import numpy as np
import pytest

from repro import Database, EngineConfig
from repro.costmodel import choose_distinct_strategy, hash_aggregation_cost, sort_cost
from repro.logical.cardinality import CardinalityEstimator
from repro.stats import StatisticsCache, chao1_estimate, collect_table_stats

from tests.helpers import assert_engines_agree


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "t", {"k": "int64", "few": "int64", "many": "int64", "x": "float64"}
    )
    rng = np.random.default_rng(5)
    n = 20_000
    database.insert(
        "t",
        {
            "k": rng.integers(0, 100, n),
            "few": rng.integers(0, 5, n),
            "many": rng.integers(0, 1_000_000, n),
            "x": rng.random(n),
        },
    )
    return database


class TestStatistics:
    def test_row_count_exact(self, db):
        stats = collect_table_stats(db.table("t"))
        assert stats.rows == 20_000

    def test_low_cardinality_estimate(self, db):
        stats = collect_table_stats(db.table("t"))
        assert stats.column("few").distinct == pytest.approx(5, abs=1)

    def test_mid_cardinality_estimate(self, db):
        stats = collect_table_stats(db.table("t"))
        assert 80 <= stats.column("k").distinct <= 120

    def test_high_cardinality_estimate_large(self, db):
        stats = collect_table_stats(db.table("t"))
        # 20k draws from a 1M domain: essentially all distinct; Chao1
        # should extrapolate far beyond the sample size.
        assert stats.column("many").distinct > 5_000

    def test_estimate_capped_by_rows(self, db):
        stats = collect_table_stats(db.table("t"))
        for name in ("k", "few", "many", "x"):
            assert stats.column(name).distinct <= 20_000

    def test_null_fraction(self):
        database = Database()
        database.create_table("n", {"x": "int64"})
        database.insert("n", {"x": [1, None, None, 4]})
        stats = collect_table_stats(database.table("n"))
        assert stats.column("x").null_fraction == pytest.approx(0.5)

    def test_chao1_formula(self):
        assert chao1_estimate(10, 4, 2) == pytest.approx(10 + 16 / 4)
        assert chao1_estimate(10, 0, 0) == pytest.approx(10)

    def test_cache_invalidation(self, db):
        cache = StatisticsCache(db.catalog)
        before = cache.table_stats("t").rows
        db.insert("t", {"k": [1], "few": [1], "many": [1], "x": [0.5]})
        after = cache.table_stats("t").rows
        assert after == before + 1


class TestCardinality:
    def estimator(self, db):
        return CardinalityEstimator(StatisticsCache(db.catalog))

    def test_scan_rows(self, db):
        est = self.estimator(db)
        assert est.rows(db.plan("SELECT k FROM t")) == pytest.approx(
            20_000, rel=0.01
        )

    def test_equality_filter(self, db):
        est = self.estimator(db)
        plan = db.plan("SELECT k FROM t WHERE few = 3")
        assert est.rows(plan) == pytest.approx(4_000, rel=0.5)

    def test_group_count(self, db):
        est = self.estimator(db)
        plan = db.plan("SELECT few, k FROM t")
        # group by (few, k) ≈ 5 × 100 = 500 combinations
        groups = est.group_count(plan, ["few", "k"])
        assert 300 <= groups <= 1_000

    def test_unprojected_column_falls_back(self, db):
        est = self.estimator(db)
        plan = db.plan("SELECT k FROM t")
        # `few` is not in the projection: provenance unknown, heuristic guess.
        assert est.column_distinct(plan, "few") == pytest.approx(2_000)

    def test_aggregate_rows(self, db):
        est = self.estimator(db)
        plan = db.plan("SELECT few, count(*) FROM t GROUP BY few")
        assert est.rows(plan) == pytest.approx(5, abs=2)

    def test_limit_rows(self, db):
        est = self.estimator(db)
        assert est.rows(db.plan("SELECT k FROM t LIMIT 7")) == 7

    def test_semi_join_bounded_by_left(self, db):
        db.create_table("s", {"k": "int64"})
        db.insert("s", {"k": list(range(50))})
        est = self.estimator(db)
        plan = db.plan("SELECT k FROM t WHERE k IN (SELECT k FROM s)")
        assert est.rows(plan) <= 20_000


class TestCostModel:
    def test_costs_monotone(self):
        assert sort_cost(1000) > sort_cost(100)
        assert hash_aggregation_cost(1000, 10) > hash_aggregation_cost(100, 10)

    def test_high_cardinality_distinct_prefers_sort(self):
        # Nearly-unique argument: the dedup hash table is as large as the
        # input; one re-sort of the existing buffer wins.
        decision = choose_distinct_strategy(
            input_rows=1_000_000, distinct_groups=990_000, final_groups=100
        )
        assert decision.use_sort

    def test_low_cardinality_distinct_prefers_hash(self):
        decision = choose_distinct_strategy(
            input_rows=1_000_000, distinct_groups=200, final_groups=100
        )
        assert not decision.use_sort


class TestCostBasedPlans:
    def plan_ops(self, db, sql, **flags):
        from repro.logical.cardinality import CardinalityEstimator
        from repro.lolepop.translate import translate_statistics
        from repro.logical import Project, Filter

        config = EngineConfig(**flags)
        node = db.plan(sql)
        while isinstance(node, (Project, Filter)):
            node = node.children[0]
        estimator = CardinalityEstimator(StatisticsCache(db.catalog))
        dag = translate_statistics(node, lambda p: [], config, estimator)
        return dag.operator_names()

    def test_high_cardinality_distinct_uses_ordagg(self, db):
        sql = (
            "SELECT few, percentile_disc(0.5) WITHIN GROUP (ORDER BY x), "
            "count(DISTINCT many) FROM t GROUP BY few"
        )
        heuristic = self.plan_ops(db, sql)
        assert heuristic.count("HASHAGG") == 2  # hash pair by default
        priced = self.plan_ops(db, sql, cost_based_distinct=True)
        assert priced.count("HASHAGG") == 0
        assert priced.count("ORDAGG") == 2  # extra dedup ORDAGG

    def test_low_cardinality_distinct_keeps_hash(self, db):
        sql = (
            "SELECT k, percentile_disc(0.5) WITHIN GROUP (ORDER BY x), "
            "sum(DISTINCT few) FROM t GROUP BY k"
        )
        priced = self.plan_ops(db, sql, cost_based_distinct=True)
        assert priced.count("HASHAGG") == 2

    def test_results_unchanged(self, db):
        sql = (
            "SELECT few, percentile_disc(0.5) WITHIN GROUP (ORDER BY x), "
            "count(DISTINCT many), sum(x) FROM t GROUP BY few"
        )
        config = EngineConfig(cost_based_distinct=True)
        assert_engines_agree(db, sql, engines=["lolepop"], config=config)
