"""Tests for grouped-reduction kernels and ordered-set math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.relational import MERGE_FUNC, grouped_reduce, merge_reduce, percentile_from_sorted
from repro.storage import Column
from repro.types import DataType


def int_col(values):
    return Column.from_values(DataType.INT64, values)


def float_col(values):
    return Column.from_values(DataType.FLOAT64, values)


CODES = np.array([0, 1, 0, 2, 1])


class TestGroupedReduce:
    def test_sum_int_exact(self):
        out = grouped_reduce("sum", int_col([1, 2, 3, 4, 5]), CODES, 3)
        assert out.to_pylist() == [4, 7, 4]
        assert out.dtype is DataType.INT64

    def test_sum_skips_nulls(self):
        out = grouped_reduce("sum", int_col([1, None, 3, None, 5]), CODES, 3)
        assert out.to_pylist() == [4, 5, None]

    def test_count(self):
        out = grouped_reduce("count", int_col([1, None, 3, None, 5]), CODES, 3)
        assert out.to_pylist() == [2, 1, 0]

    def test_count_star(self):
        out = grouped_reduce("count_star", None, CODES, 3)
        assert out.to_pylist() == [2, 2, 1]

    def test_min_max(self):
        col = float_col([5.0, 1.0, 2.0, 9.0, 7.0])
        assert grouped_reduce("min", col, CODES, 3).to_pylist() == [2.0, 1.0, 9.0]
        assert grouped_reduce("max", col, CODES, 3).to_pylist() == [5.0, 7.0, 9.0]

    def test_min_int_keeps_type(self):
        out = grouped_reduce("min", int_col([5, 1, 2, 9, 7]), CODES, 3)
        assert out.dtype is DataType.INT64
        assert out.to_pylist() == [2, 1, 9]

    def test_min_strings(self):
        col = Column.from_values(DataType.STRING, ["e", "b", "a", "z", "c"])
        out = grouped_reduce("min", col, CODES, 3)
        assert out.to_pylist() == ["a", "b", "z"]

    def test_any_first_nonnull(self):
        out = grouped_reduce("any", int_col([None, 2, 3, None, 5]), CODES, 3)
        assert out.to_pylist() == [3, 2, None]

    def test_bool_aggregates(self):
        col = Column.from_values(DataType.BOOL, [True, False, True, None, False])
        assert grouped_reduce("bool_and", col, CODES, 3).to_pylist() == [
            True, False, None,
        ]
        assert grouped_reduce("bool_or", col, CODES, 3).to_pylist() == [
            True, False, None,
        ]

    def test_empty_group_is_null(self):
        out = grouped_reduce("sum", float_col([]), np.empty(0, np.int64), 2)
        assert out.to_pylist() == [None, None]

    def test_count_star_requires_no_arg(self):
        with pytest.raises(ExecutionError):
            grouped_reduce("sum", None, CODES, 3)

    def test_unknown_func(self):
        with pytest.raises(ExecutionError):
            grouped_reduce("median", float_col([1.0]), np.array([0]), 1)


class TestMergeReduce:
    def test_count_merges_by_sum(self):
        assert MERGE_FUNC["count"] == "sum"
        partials = int_col([2, 3, 5])
        out = merge_reduce("count", partials, np.array([0, 0, 1]), 2)
        assert out.to_pylist() == [5, 5]

    def test_min_merges_by_min(self):
        out = merge_reduce("min", int_col([4, 2, 9]), np.array([0, 0, 1]), 2)
        assert out.to_pylist() == [2, 9]


class TestPercentiles:
    def test_disc_matches_sql_definition(self):
        # first value with cumulative fraction >= f
        values = np.array([10, 20, 30, 40])
        assert percentile_from_sorted("percentile_disc", values, 0.5)[0] == 20
        assert percentile_from_sorted("percentile_disc", values, 0.25)[0] == 10
        assert percentile_from_sorted("percentile_disc", values, 0.26)[0] == 20
        assert percentile_from_sorted("percentile_disc", values, 1.0)[0] == 40
        assert percentile_from_sorted("percentile_disc", values, 0.0)[0] == 10

    def test_cont_interpolates(self):
        values = np.array([10.0, 20.0])
        value, valid = percentile_from_sorted("percentile_cont", values, 0.5)
        assert (value, valid) == (15.0, True)

    def test_empty_is_null(self):
        assert percentile_from_sorted("percentile_disc", np.array([]), 0.5)[1] is False


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.one_of(st.integers(-50, 50), st.none())),
        min_size=1,
        max_size=60,
    ),
    st.sampled_from(["sum", "count", "min", "max"]),
)
def test_grouped_reduce_matches_python(pairs, func):
    """Property: kernels agree with a trivial Python dict implementation."""
    codes = np.array([c for c, _ in pairs], dtype=np.int64)
    values = int_col([v for _, v in pairs])
    out = grouped_reduce(func, values, codes, 5).to_pylist()
    expected = []
    for g in range(5):
        members = [v for (c, v) in pairs if c == g and v is not None]
        if func == "count":
            expected.append(len(members))
        elif not members:
            expected.append(None)
        elif func == "sum":
            expected.append(sum(members))
        elif func == "min":
            expected.append(min(members))
        else:
            expected.append(max(members))
    assert out == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=50),
       st.floats(0.0, 1.0))
def test_percentile_disc_is_element_with_enough_mass(values, fraction):
    """Property: percentile_disc returns a member whose cumulative frequency
    reaches the fraction."""
    ordered = np.array(sorted(values))
    value, valid = percentile_from_sorted("percentile_disc", ordered, fraction)
    assert valid
    n = len(ordered)
    position = list(ordered).index(value)
    # cumulative fraction at this element's last occurrence >= fraction
    last = max(i for i, v in enumerate(ordered) if v == value)
    assert (last + 1) / n >= fraction
