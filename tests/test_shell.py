"""Tests for the interactive shell and table formatting."""

import io

import pytest

from repro.format import format_table, format_value
from repro.shell import Shell


class TestFormatting:
    def test_value_rendering(self):
        assert format_value(None) == "NULL"
        assert format_value(1.5) == "1.5"
        assert format_value(2.0) == "2"
        assert format_value("x") == "x"
        assert format_value(0.0) == "0"

    def test_table_alignment(self):
        text = format_table(["name", "n"], [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert lines[1] == "| name |  n |"
        assert "| a    |  1 |" in lines
        assert "(2 rows)" in text

    def test_row_cap(self):
        rows = [(i,) for i in range(100)]
        text = format_table(["x"], rows, max_rows=5)
        assert "showing first 5" in text


@pytest.fixture
def shell():
    out = io.StringIO()
    sh = Shell(out=out)
    sh.execute_line("")  # no-op
    return sh, out


def output_of(shell_tuple):
    shell_obj, out = shell_tuple
    return out.getvalue()


class TestShell:
    def test_create_and_query(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": [3, 1, 2]})
        sh.execute_line("SELECT sum(a) AS s FROM t;")
        text = out.getvalue()
        assert "| 6 |" in text
        assert "makespan" in text  # timing on by default

    def test_timing_toggle(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": [1]})
        sh.execute_line(".timing off")
        out.truncate(0), out.seek(0)
        sh.execute_line("SELECT a FROM t")
        assert "makespan" not in out.getvalue()

    def test_tables_and_schema(self, shell):
        sh, out = shell
        sh.db.create_table("zoo", {"x": "int64", "s": "string"})
        sh.execute_line(".tables")
        sh.execute_line(".schema zoo")
        text = out.getvalue()
        assert "zoo" in text and "string" in text and "(0 rows)" in text

    def test_engine_switch(self, shell):
        sh, out = shell
        sh.execute_line(".engine naive")
        assert sh.engine == "naive"
        sh.execute_line(".engine duckdb")
        assert sh.engine == "naive"
        assert "unknown engine" in out.getvalue()

    def test_threads(self, shell):
        sh, _ = shell
        sh.execute_line(".threads 8")
        assert sh.threads == 8

    def test_explain_commands(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64", "b": "float64"})
        sh.execute_line(".explain SELECT a, sum(b) FROM t GROUP BY a")
        sh.execute_line(".lolepop SELECT a, median(b) FROM t GROUP BY a")
        text = out.getvalue()
        assert "AGGREGATE" in text and "ORDAGG" in text

    def test_trace(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": list(range(100))})
        sh.execute_line(".trace SELECT a, count(*) FROM t GROUP BY a")
        assert "makespan" in out.getvalue()

    def test_analyze(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64", "b": "float64"})
        sh.db.insert("t", {"a": [1, 1, 2, 3] * 25, "b": [0.5] * 100})
        sh.execute_line(".analyze SELECT a, sum(b) FROM t GROUP BY a")
        text = out.getvalue()
        assert "EXPLAIN ANALYZE" in text
        assert "rows=" in text and "est=" in text and "max Q-error" in text

    def test_profile(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": list(range(200))})
        sh.execute_line(".profile SELECT a, count(*) FROM t GROUP BY a")
        text = out.getvalue()
        assert "work items" in text
        assert "HASHAGG" in text and "rows_out=" in text

    def test_profile_json(self, shell, tmp_path):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": list(range(50))})
        path = tmp_path / "profile.json"
        sh.execute_line(f".profile json {path} SELECT a, count(*) FROM t GROUP BY a")
        assert f"profile written to {path}" in out.getvalue()
        import json

        payload = json.loads(path.read_text())
        assert payload["dags"][0]["operators"]
        assert payload["trace_events"]

    def test_trace_json(self, shell, tmp_path):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": list(range(50))})
        path = tmp_path / "trace.json"
        sh.execute_line(f".trace json {path} SELECT a, count(*) FROM t GROUP BY a")
        assert "trace events written to" in out.getvalue()
        import json

        from repro.observability import validate_trace_events

        validate_trace_events(json.loads(path.read_text()))

    def test_trace_and_profile_parallel_mode(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64", "b": "float64"})
        sh.db.insert(
            "t", {"a": [i % 7 for i in range(500)], "b": [0.25] * 500}
        )
        sh.execute_line(".mode parallel")
        sh.execute_line(".threads 2")
        out.truncate(0), out.seek(0)
        sh.execute_line(".trace SELECT a, sum(b) FROM t GROUP BY a")
        text = out.getvalue()
        assert "makespan" in text and "regions" in text
        out.truncate(0), out.seek(0)
        sh.execute_line(".profile SELECT a, median(b) FROM t GROUP BY a")
        text = out.getvalue()
        assert "work items" in text and "rows_out=" in text

    def test_metrics(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": [1, 2, 3]})
        sh.execute_line("SELECT count(*) FROM t")
        out.truncate(0), out.seek(0)
        sh.execute_line(".metrics")
        text = out.getvalue()
        assert "queries.total" in text
        assert "queries.makespan_seconds" in text

    def test_metrics_reset(self, shell):
        sh, out = shell
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": [1, 2, 3]})
        sh.execute_line("SELECT count(*) FROM t")
        sh.execute_line(".metrics reset")
        assert "metrics reset" in out.getvalue()
        out.truncate(0), out.seek(0)
        sh.execute_line(".metrics")
        text = out.getvalue()
        # The registry was zeroed: either empty or every counter is 0.
        assert "queries.total: 0" in text or "(no metrics recorded yet)" in text
        out.truncate(0), out.seek(0)
        sh.execute_line(".metrics bogus")
        assert "usage: .metrics [reset]" in out.getvalue()

    def test_telemetry_commands(self, shell):
        from repro.observability.telemetry import Telemetry, TelemetryConfig

        sh, out = shell
        # Private sink with every query slow-logged, so the views populate.
        sh.db.telemetry = Telemetry(
            TelemetryConfig(enabled=True, slow_query_threshold_s=0.0)
        )
        sh.db.create_table("t", {"a": "int64"})
        sh.db.insert("t", {"a": [1, 2, 3]})
        sh.execute_line("SELECT sum(a) FROM t")
        out.truncate(0), out.seek(0)
        sh.execute_line(".slowlog")
        text = out.getvalue()
        assert "rows=1" in text and "fp=" in text
        out.truncate(0), out.seek(0)
        sh.execute_line(".fingerprints")
        text = out.getvalue()
        assert "n=1" in text and "p95~" in text
        out.truncate(0), out.seek(0)
        sh.execute_line(".health")
        assert "no health samples" in out.getvalue()

    def test_telemetry_commands_empty_state(self, shell):
        from repro.observability.telemetry import Telemetry, TelemetryConfig

        sh, out = shell
        sh.db.telemetry = Telemetry(TelemetryConfig(enabled=True))
        sh.execute_line(".slowlog")
        assert "slow-query log empty" in out.getvalue()
        out.truncate(0), out.seek(0)
        sh.execute_line(".fingerprints")
        assert "no fingerprints tracked" in out.getvalue()

    def test_sql_error_reported(self, shell):
        sh, out = shell
        sh.execute_line("SELECT nope FROM nowhere")
        assert "error:" in out.getvalue()

    def test_load_tpch(self, shell):
        sh, out = shell
        sh.execute_line(".load tpch 0.001")
        assert "lineitem rows" in out.getvalue()
        sh.execute_line("SELECT count(*) AS n FROM nation")
        assert "| 25 |" in out.getvalue()

    def test_quit(self, shell):
        sh, _ = shell
        assert sh.execute_line(".quit") is False

    def test_unknown_dot_command(self, shell):
        sh, out = shell
        sh.execute_line(".frobnicate")
        assert "unknown command" in out.getvalue()

    def test_help(self, shell):
        sh, out = shell
        sh.execute_line(".help")
        assert ".tables" in out.getvalue()
