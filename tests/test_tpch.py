"""Tests for the TPC-H substrate: generator invariants and query results."""


import numpy as np
import pytest

from repro.tpch import FIGURE7_VARIANTS, TPCH_QUERIES, generate_tpch
from repro.tpch.queries import QUERY_TABLES

from tests.helpers import assert_engines_agree


@pytest.fixture(scope="module")
def data():
    return generate_tpch(scale_factor=0.004, seed=3)


class TestGeneratorInvariants:
    def test_cardinalities_scale(self, data):
        assert len(data["region"]["r_regionkey"]) == 5
        assert len(data["nation"]["n_nationkey"]) == 25
        orders = len(data["orders"]["o_orderkey"])
        lines = len(data["lineitem"]["l_orderkey"])
        # dbgen averages ~4 lineitems per order (uniform 1..7).
        assert 2 * orders < lines < 7 * orders

    def test_foreign_keys_resolve(self, data):
        custkeys = set(data["customer"]["c_custkey"].tolist())
        assert set(data["orders"]["o_custkey"].tolist()) <= custkeys
        orderkeys = set(data["orders"]["o_orderkey"].tolist())
        assert set(data["lineitem"]["l_orderkey"].tolist()) <= orderkeys
        suppkeys = set(data["supplier"]["s_suppkey"].tolist())
        assert set(data["lineitem"]["l_suppkey"].tolist()) <= suppkeys
        nationkeys = set(data["nation"]["n_nationkey"].tolist())
        assert set(data["customer"]["c_nationkey"].tolist()) <= nationkeys
        assert set(data["supplier"]["s_nationkey"].tolist()) <= nationkeys

    def test_linenumber_domain(self, data):
        """l_linenumber in 1..7 — the 7-value group key of Table 3."""
        values = set(data["lineitem"]["l_linenumber"].tolist())
        assert values == set(range(1, 8))

    def test_linenumbers_sequential_per_order(self, data):
        keys = data["lineitem"]["l_orderkey"]
        nums = data["lineitem"]["l_linenumber"]
        # Within one order, line numbers are 1..count.
        first_order = keys[0]
        mask = keys == first_order
        assert sorted(nums[mask].tolist()) == list(range(1, int(mask.sum()) + 1))

    def test_date_ordering_per_line(self, data):
        ship = data["lineitem"]["l_shipdate"].astype(np.int64)
        receipt = data["lineitem"]["l_receiptdate"].astype(np.int64)
        assert (receipt > ship).all()

    def test_value_domains(self, data):
        q = data["lineitem"]["l_quantity"]
        assert q.min() >= 1 and q.max() <= 50
        disc = data["lineitem"]["l_discount"]
        assert disc.min() >= 0.0 and disc.max() <= 0.10
        assert set(data["lineitem"]["l_returnflag"].tolist()) <= {"R", "A", "N"}
        assert set(data["lineitem"]["l_linestatus"].tolist()) <= {"O", "F"}

    def test_deterministic_by_seed(self):
        a = generate_tpch(0.002, seed=9)
        b = generate_tpch(0.002, seed=9)
        assert np.array_equal(a["lineitem"]["l_suppkey"], b["lineitem"]["l_suppkey"])
        c = generate_tpch(0.002, seed=10)
        assert not np.array_equal(
            a["lineitem"]["l_suppkey"], c["lineitem"]["l_suppkey"]
        )

    def test_nations_cover_regions(self, data):
        assert set(data["nation"]["n_regionkey"].tolist()) == set(range(5))


class TestQueries:
    @pytest.mark.parametrize("qid", sorted(TPCH_QUERIES))
    def test_engines_agree(self, tpch_db, qid):
        assert_engines_agree(tpch_db, TPCH_QUERIES[qid])

    def test_q4_returns_all_priorities(self, tpch_db):
        rows = tpch_db.sql(TPCH_QUERIES["q4"]).rows()
        assert len(rows) == 5
        assert all(count > 0 for _, count in rows)

    def test_q5_revenue_positive(self, tpch_db):
        rows = tpch_db.sql(TPCH_QUERIES["q5"]).rows()
        assert rows, "ASIA should have revenue at this scale"
        revenues = [r[1] for r in rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q10_limit_and_order(self, tpch_db):
        rows = tpch_db.sql(TPCH_QUERIES["q10"]).rows()
        assert len(rows) == 20
        revenues = [r[2] for r in rows]
        assert revenues == sorted(revenues, reverse=True)

    @pytest.mark.parametrize("qid", sorted(FIGURE7_VARIANTS))
    def test_figure7_variants_agree(self, tpch_db, qid):
        for variant, sql in FIGURE7_VARIANTS[qid].items():
            assert_engines_agree(
                tpch_db, sql, engines=["lolepop", "monolithic"]
            )

    def test_query_tables_listed(self):
        assert set(QUERY_TABLES) == set(TPCH_QUERIES)
