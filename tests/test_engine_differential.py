"""Differential tests: every vectorized engine must reproduce the naive row
engine's answer on a battery of fixed queries plus randomized data."""

import numpy as np
import pytest

from repro import Database, EngineConfig

from tests.helpers import assert_engines_agree

FIXED_QUERIES = [
    # associative flavors
    "SELECT k, sum(q), count(*), count(e), min(e), max(e) FROM r GROUP BY k",
    "SELECT k, min(s), max(s), any(s) IS NOT NULL AS has FROM r GROUP BY k",
    "SELECT sum(q), count(*) FROM r",
    "SELECT count(*) FROM r",  # regression: zero-column pre-projection
    "SELECT k, bool_and(b), bool_or(b) FROM r GROUP BY k",
    # distinct
    "SELECT k, count(DISTINCT n), sum(DISTINCT n) FROM r GROUP BY k",
    "SELECT count(DISTINCT s) FROM r",
    "SELECT k, avg(DISTINCT n) FROM r GROUP BY k",
    # ordered-set
    "SELECT k, percentile_disc(0.5) WITHIN GROUP (ORDER BY q) FROM r GROUP BY k",
    "SELECT k, percentile_disc(0.25) WITHIN GROUP (ORDER BY q DESC) FROM r GROUP BY k",
    "SELECT k, percentile_cont(0.9) WITHIN GROUP (ORDER BY e) FROM r GROUP BY k",
    "SELECT k, median(q), median(e) FROM r GROUP BY k",
    "SELECT percentile_disc(0.5) WITHIN GROUP (ORDER BY q) FROM r",
    # mixed: ordered-set + associative + distinct (Figure 3 plan 2 shape)
    (
        "SELECT k, sum(q), sum(DISTINCT n), "
        "percentile_disc(0.5) WITHIN GROUP (ORDER BY q), "
        "percentile_disc(0.5) WITHIN GROUP (ORDER BY e) FROM r GROUP BY k"
    ),
    # composed
    "SELECT k, avg(e), var_pop(e), var_samp(e), stddev_pop(e), stddev_samp(e) FROM r GROUP BY k",
    # grouping sets / rollup / cube
    "SELECT k, n, sum(q) FROM r GROUP BY GROUPING SETS ((k, n), (k), (n))",
    "SELECT k, n, sum(q), grouping_id FROM r GROUP BY GROUPING SETS ((k, n), (k))",
    "SELECT k, n, count(*) FROM r GROUP BY ROLLUP (k, n)",
    "SELECT k, n, sum(q) FROM r GROUP BY CUBE (k, n)",
    "SELECT k, n, percentile_disc(0.5) WITHIN GROUP (ORDER BY q) FROM r "
    "GROUP BY GROUPING SETS ((k, n), (k))",
    # expressions in keys and args
    "SELECT n + 1 AS n1, sum(q * 2) FROM r GROUP BY n + 1",
    "SELECT k, sum(CASE WHEN q > 0.5 THEN 1 ELSE 0 END) FROM r GROUP BY k",
    # HAVING / ORDER BY / LIMIT
    "SELECT k, sum(q) AS s FROM r GROUP BY k HAVING count(*) > 50 ORDER BY s DESC",
    "SELECT k, count(*) AS c FROM r GROUP BY k ORDER BY c DESC, k LIMIT 3",
    "SELECT s, e FROM r WHERE e IS NOT NULL ORDER BY e LIMIT 10 OFFSET 5",
    # windows (deterministic orderings)
    "SELECT k, q, row_number() OVER (PARTITION BY k ORDER BY q, e, d) AS rn FROM r",
    "SELECT k, q, rank() OVER (PARTITION BY k ORDER BY n) AS rk, "
    "dense_rank() OVER (PARTITION BY k ORDER BY n) AS dr FROM r",
    "SELECT k, lag(q) OVER (PARTITION BY k ORDER BY q, e, d) AS lg, "
    "lead(q, 2) OVER (PARTITION BY k ORDER BY q, e, d) AS ld FROM r",
    "SELECT k, sum(q) OVER (PARTITION BY k ORDER BY q, e, d) AS cs FROM r",
    "SELECT k, min(q) OVER (PARTITION BY k ORDER BY q, e, d "
    "ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS mw FROM r",
    "SELECT k, first_value(q) OVER (PARTITION BY k ORDER BY q, e, d) AS fv, "
    "last_value(q) OVER (PARTITION BY k ORDER BY q, e, d) AS lv FROM r",
    "SELECT k, ntile(4) OVER (PARTITION BY k ORDER BY q, e, d) AS nt FROM r",
    "SELECT k, cume_dist() OVER (PARTITION BY k ORDER BY n) AS cd FROM r",
    "SELECT s, sum(q) OVER (PARTITION BY s) AS total FROM r",
    # nested aggregates
    "SELECT k, mad(q) FROM r GROUP BY k",
    "SELECT k, median(q - median(q)) FROM r GROUP BY k",
    "SELECT k, mssd(q) WITHIN GROUP (ORDER BY d) FROM r GROUP BY k",
    "SELECT k, sum(pow(lead(q) OVER (PARTITION BY k ORDER BY d, q, e) - q, 2)) "
    "/ nullif(count(*) - 1, 0) AS m FROM r GROUP BY k",
    # nested aggregation regions
    "SELECT percentile_disc(0.5) WITHIN GROUP (ORDER BY t) FROM "
    "(SELECT sum(q) AS t FROM r GROUP BY k) AS sub",
    "SELECT n2, count(*) FROM (SELECT k, count(*) AS n2 FROM r GROUP BY k) AS c "
    "GROUP BY n2",
    # CTE + window + aggregate (the paper's introductory query)
    (
        "WITH diffs AS (SELECT k, n, q - lag(q) OVER (ORDER BY d, q, e) AS delta FROM r) "
        "SELECT k, avg(delta), median(delta), count(DISTINCT delta) "
        "FROM diffs GROUP BY k"
    ),
    # set operations
    "SELECT k, sum(q) FROM r GROUP BY k UNION ALL SELECT n, sum(e) FROM r GROUP BY n",
    "SELECT DISTINCT k, n FROM r",
    # strings
    "SELECT s, count(*) FROM r WHERE s LIKE '%e%' GROUP BY s",
    "SELECT upper(s) AS u, count(*) FROM r GROUP BY upper(s)",
]


@pytest.mark.parametrize("sql", FIXED_QUERIES, ids=range(len(FIXED_QUERIES)))
def test_engines_agree_on_fixed_query(db, sql):
    assert_engines_agree(db, sql)


@pytest.mark.parametrize("threads", [1, 4])
def test_thread_count_does_not_change_results(db, threads):
    sql = (
        "SELECT k, sum(q), count(DISTINCT n), "
        "percentile_disc(0.5) WITHIN GROUP (ORDER BY q) FROM r GROUP BY k"
    )
    config = EngineConfig(num_threads=threads, num_partitions=16)
    assert_engines_agree(db, sql, config=config)


@pytest.mark.parametrize("partitions", [1, 3, 64])
def test_partition_count_does_not_change_results(db, partitions):
    sql = "SELECT k, median(q), sum(DISTINCT n) FROM r GROUP BY k"
    config = EngineConfig(num_partitions=partitions)
    assert_engines_agree(db, sql, config=config)


@pytest.mark.parametrize("morsel", [7, 100, 10_000])
def test_morsel_size_does_not_change_results(db, morsel):
    sql = "SELECT k, n, sum(q) FROM r GROUP BY GROUPING SETS ((k, n), (n))"
    config = EngineConfig(morsel_size=morsel)
    assert_engines_agree(db, sql, engines=["lolepop", "monolithic"], config=config)


ABLATION_FLAGS = [
    {"reuse_buffers": False},
    {"elide_sorts": False},
    {"remove_redundant_combines": False},
    {"reaggregate_grouping_sets": False},
    {"two_phase_hashagg": False},
    {"permutation_vectors": False},
]


@pytest.mark.parametrize("flags", ABLATION_FLAGS, ids=lambda f: next(iter(f)))
def test_ablation_flags_preserve_results(db, flags):
    """Every optimizer ablation changes the plan, never the answer."""
    queries = [
        "SELECT k, sum(q), sum(DISTINCT n), "
        "percentile_disc(0.5) WITHIN GROUP (ORDER BY q) FROM r GROUP BY k",
        "SELECT k, n, sum(q) FROM r GROUP BY GROUPING SETS ((k, n), (k), (n))",
        "SELECT k, mad(q) FROM r GROUP BY k",
    ]
    config = EngineConfig(num_threads=2, **flags)
    for sql in queries:
        assert_engines_agree(db, sql, engines=["lolepop"], config=config)


def test_randomized_differential():
    """Randomized data + a grammar of query shapes, all engines."""
    rng = np.random.default_rng(123)
    for round_number in range(3):
        database = Database(num_threads=2)
        database.create_table("t", {"g": "int64", "h": "int64", "x": "float64"})
        size = int(rng.integers(30, 300))
        database.insert(
            "t",
            {
                "g": [int(v) for v in rng.integers(0, 5, size)],
                "h": [
                    int(v) if v < 3 else None for v in rng.integers(0, 4, size)
                ],
                "x": [
                    round(float(v), 3) if v > 0.05 else None
                    for v in rng.random(size)
                ],
            },
        )
        queries = [
            "SELECT g, sum(x), count(x), count(*) FROM t GROUP BY g",
            "SELECT g, h, sum(x) FROM t GROUP BY GROUPING SETS ((g, h), (g))",
            "SELECT g, median(x), count(DISTINCT h) FROM t GROUP BY g",
            "SELECT g, x, sum(x) OVER (PARTITION BY g ORDER BY x, h) AS c FROM t "
            "WHERE x IS NOT NULL",
            "SELECT g, mad(x) FROM t GROUP BY g",
        ]
        for sql in queries:
            assert_engines_agree(database, sql)
