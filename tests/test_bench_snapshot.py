"""Tests for the benchmark snapshot/gate tooling (repro.bench.snapshot).

Covers: schema validation (valid documents, every violation class), the
gate's behavior on identical snapshots, a synthetically injected 2×
regression, host-fingerprint mismatches (warn, don't fail), advisory-wall
mode, coverage loss, correctness fatality, snapshot file discovery, the
CLI exit codes, and a miniature end-to-end ``build_snapshot`` run.
"""

from __future__ import annotations

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.bench.harness import BenchResult
from repro.bench.snapshot import (
    SCHEMA_VERSION,
    compare_snapshots,
    find_latest_snapshot,
    host_fingerprint,
    load_snapshot,
    snapshot_path,
    validate_snapshot,
    write_snapshot,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_snapshot(pr=5, wall=0.100, qps=50.0, p95=20.0):
    """A small, schema-valid synthetic snapshot."""
    def query(w):
        return {
            "wall_s": w,
            "parallel_wall_s": w * 0.9,
            "parallel_speedup": 1.11,
            "rows": 10,
            "verified": True,
        }

    return {
        "schema_version": SCHEMA_VERSION,
        "pr": pr,
        "created_utc": "2026-08-08T00:00:00Z",
        "host": host_fingerprint(),
        "config": {
            "scale_factor": 0.01,
            "threads": 4,
            "repeats": 3,
            "queries_per_family": None,
            "server_duration_s": 3.0,
            "server_clients": 4,
        },
        "families": {
            "star_ds": {
                "description": "decision support",
                "engine_profile": {},
                "queries": {"ds1": query(wall), "ds2": query(wall * 2)},
            },
            "sensor_edge": {
                "description": "sensor windows",
                "engine_profile": {"memory_budget_bytes": 65536},
                "queries": {"se1": query(wall * 1.5)},
            },
        },
        "server": {
            "throughput_qps": qps,
            "completed": 100,
            "incorrect": 0,
            "latency_ms": {"p50": 10.0, "p95": p95, "p99": 30.0, "mean": 12.0},
            "plan_cache_hit_rate": 0.9,
        },
        "correctness": {"queries_verified": 3, "mismatches": []},
    }


def make_reuse_block(warm=0.010, cold=0.100, hits=12):
    """A schema-valid optional ``reuse`` block (cold-vs-warm walls)."""
    def entry(c, w):
        return {
            "cold_wall_s": c,
            "warm_wall_s": w,
            "warm_speedup": round(c / w, 4),
            "verified": True,
        }

    return {
        "queries": {
            "ordered_scan": entry(cold, warm),
            "group_fine": entry(cold * 2, warm),
        },
        "manager": {
            "hits": hits,
            "misses": 2,
            "hit_rate": 0.86,
            "views": 1,
            "buffers": 2,
            "resident_bytes": 4096,
        },
    }


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
class TestValidateSnapshot:
    def test_valid_document(self):
        assert validate_snapshot(make_snapshot()) == []

    def test_not_an_object(self):
        assert validate_snapshot([1, 2]) != []
        assert validate_snapshot(None) != []

    @pytest.mark.parametrize(
        "key", ["schema_version", "pr", "created_utc", "host", "config",
                "families", "server", "correctness"]
    )
    def test_missing_top_level_key(self, key):
        doc = make_snapshot()
        del doc[key]
        errors = validate_snapshot(doc)
        assert any(key in e for e in errors), errors

    def test_wrong_schema_version(self):
        doc = make_snapshot()
        doc["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in e for e in validate_snapshot(doc))

    def test_bool_rejected_where_int_expected(self):
        doc = make_snapshot()
        doc["pr"] = True
        assert any("pr" in e for e in validate_snapshot(doc))

    def test_negative_wall_time(self):
        doc = make_snapshot()
        doc["families"]["star_ds"]["queries"]["ds1"]["wall_s"] = -1.0
        assert any("wall_s" in e for e in validate_snapshot(doc))

    def test_zero_speedup_rejected(self):
        doc = make_snapshot()
        doc["families"]["star_ds"]["queries"]["ds1"]["parallel_speedup"] = 0.0
        assert any("parallel_speedup" in e for e in validate_snapshot(doc))

    def test_verified_must_be_bool(self):
        doc = make_snapshot()
        doc["families"]["star_ds"]["queries"]["ds1"]["verified"] = 1
        assert any("verified" in e for e in validate_snapshot(doc))

    def test_empty_families_rejected(self):
        doc = make_snapshot()
        doc["families"] = {}
        assert any("families" in e for e in validate_snapshot(doc))

    def test_empty_query_map_rejected(self):
        doc = make_snapshot()
        doc["families"]["star_ds"]["queries"] = {}
        assert any("queries" in e for e in validate_snapshot(doc))

    def test_hit_rate_bounds(self):
        doc = make_snapshot()
        doc["server"]["plan_cache_hit_rate"] = 1.5
        assert any("plan_cache_hit_rate" in e for e in validate_snapshot(doc))

    def test_mismatches_must_be_strings(self):
        doc = make_snapshot()
        doc["correctness"]["mismatches"] = [42]
        assert any("mismatches" in e for e in validate_snapshot(doc))

    # --- the optional reuse block -------------------------------------
    def test_reuse_block_optional_but_validated(self):
        doc = make_snapshot()
        assert validate_snapshot(doc) == []  # absent is fine (pre-PR-8)
        doc["reuse"] = make_reuse_block()
        assert validate_snapshot(doc) == []

    def test_reuse_negative_wall_rejected(self):
        doc = make_snapshot()
        doc["reuse"] = make_reuse_block()
        doc["reuse"]["queries"]["ordered_scan"]["warm_wall_s"] = -1.0
        assert any("warm_wall_s" in e for e in validate_snapshot(doc))

    def test_reuse_zero_speedup_rejected(self):
        doc = make_snapshot()
        doc["reuse"] = make_reuse_block()
        doc["reuse"]["queries"]["ordered_scan"]["warm_speedup"] = 0.0
        assert any("warm_speedup" in e for e in validate_snapshot(doc))

    def test_reuse_empty_queries_rejected(self):
        doc = make_snapshot()
        doc["reuse"] = make_reuse_block()
        doc["reuse"]["queries"] = {}
        assert any("reuse.queries" in e for e in validate_snapshot(doc))

    def test_reuse_hit_rate_bounds(self):
        doc = make_snapshot()
        doc["reuse"] = make_reuse_block()
        doc["reuse"]["manager"]["hit_rate"] = 1.5
        assert any("hit_rate" in e for e in validate_snapshot(doc))

    def test_reuse_negative_counter_rejected(self):
        doc = make_snapshot()
        doc["reuse"] = make_reuse_block()
        doc["reuse"]["manager"]["hits"] = -1
        assert any("manager.hits" in e for e in validate_snapshot(doc))


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------
class TestGate:
    def test_identical_snapshots_pass(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        report = compare_snapshots(base, cur)
        assert report.ok, report.render()
        assert report.failures == []
        assert report.checked > 0

    def test_injected_2x_regression_fails(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        cur["families"]["star_ds"]["queries"]["ds1"]["wall_s"] = (
            base["families"]["star_ds"]["queries"]["ds1"]["wall_s"] * 2.0
        )
        report = compare_snapshots(base, cur)
        assert not report.ok
        assert any("ds1 serial" in f for f in report.failures)

    def test_sub_noise_regression_passes(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        cur["families"]["star_ds"]["queries"]["ds1"]["wall_s"] *= 1.10
        report = compare_snapshots(base, cur, noise=0.35)
        assert report.ok, report.render()

    def test_tiny_absolute_delta_never_gates(self):
        """A 3× blowup on a 1ms query is below the absolute noise floor."""
        base = make_snapshot(pr=5, wall=0.001)
        cur = make_snapshot(pr=6, wall=0.003)
        report = compare_snapshots(base, cur, min_wall_s=0.005)
        assert report.ok, report.render()

    def test_host_mismatch_warns_instead_of_failing(self):
        base = make_snapshot(pr=5)
        base["host"]["cpu_count"] = 64
        cur = make_snapshot(pr=6)
        cur["families"]["star_ds"]["queries"]["ds1"]["wall_s"] *= 3.0
        report = compare_snapshots(base, cur)
        assert report.ok, report.render()
        assert any("host fingerprint" in w for w in report.warnings)
        assert any("advisory regression" in w for w in report.warnings)

    def test_config_mismatch_warns_instead_of_failing(self):
        base = make_snapshot(pr=5)
        base["config"]["scale_factor"] = 0.1
        cur = make_snapshot(pr=6)
        cur["families"]["star_ds"]["queries"]["ds1"]["wall_s"] *= 3.0
        report = compare_snapshots(base, cur)
        assert report.ok, report.render()
        assert any("measurement config" in w for w in report.warnings)

    def test_advisory_wall_demotes_regressions(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        cur["families"]["star_ds"]["queries"]["ds1"]["wall_s"] *= 3.0
        report = compare_snapshots(base, cur, advisory_wall=True)
        assert report.ok, report.render()
        assert any("advisory regression" in w for w in report.warnings)

    def test_correctness_fatal_even_with_host_mismatch(self):
        base = make_snapshot(pr=5)
        base["host"]["cpu_count"] = 64
        cur = make_snapshot(pr=6)
        cur["correctness"]["mismatches"] = ["star_ds/ds1: parallel diverges"]
        report = compare_snapshots(base, cur, advisory_wall=True)
        assert not report.ok
        assert any("correctness" in f for f in report.failures)

    # --- the optional reuse block -------------------------------------
    def test_reuse_blocks_compare_cleanly(self):
        base, cur = make_snapshot(pr=5), make_snapshot(pr=6)
        base["reuse"] = make_reuse_block()
        cur["reuse"] = make_reuse_block()
        report = compare_snapshots(base, cur)
        assert report.ok, report.render()

    def test_reuse_baseline_without_block_still_gates(self):
        """PR 8's snapshot gates against PR 6's block-less baseline."""
        base, cur = make_snapshot(pr=5), make_snapshot(pr=6)
        cur["reuse"] = make_reuse_block()
        report = compare_snapshots(base, cur)
        assert report.ok, report.render()

    def test_unverified_reuse_query_is_fatal(self):
        base, cur = make_snapshot(pr=5), make_snapshot(pr=6)
        cur["reuse"] = make_reuse_block()
        cur["reuse"]["queries"]["group_fine"]["verified"] = False
        report = compare_snapshots(base, cur, advisory_wall=True)
        assert not report.ok
        assert any("reuse/group_fine" in f for f in report.failures)

    def test_zero_manager_hits_is_fatal(self):
        base, cur = make_snapshot(pr=5), make_snapshot(pr=6)
        cur["reuse"] = make_reuse_block(hits=0)
        report = compare_snapshots(base, cur, advisory_wall=True)
        assert not report.ok
        assert any("no hits" in f for f in report.failures)

    def test_warm_wall_regression_fails(self):
        base, cur = make_snapshot(pr=5), make_snapshot(pr=6)
        base["reuse"] = make_reuse_block(warm=0.010)
        cur["reuse"] = make_reuse_block(warm=0.030)
        report = compare_snapshots(base, cur)
        assert not report.ok
        assert any("reuse/" in f and "warm" in f for f in report.failures)

    def test_vanished_reuse_query_fails(self):
        base, cur = make_snapshot(pr=5), make_snapshot(pr=6)
        base["reuse"] = make_reuse_block()
        cur["reuse"] = make_reuse_block()
        del cur["reuse"]["queries"]["group_fine"]
        report = compare_snapshots(base, cur)
        assert not report.ok
        assert any("vanished" in f for f in report.failures)

    def test_warm_slower_than_cold_warns(self):
        base, cur = make_snapshot(pr=5), make_snapshot(pr=6)
        cur["reuse"] = make_reuse_block(warm=0.200, cold=0.100)
        report = compare_snapshots(base, cur)
        assert report.ok, report.render()
        assert any("slower than cold" in w for w in report.warnings)

    def test_unverified_query_fails(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        cur["families"]["sensor_edge"]["queries"]["se1"]["verified"] = False
        report = compare_snapshots(base, cur)
        assert not report.ok
        assert any("not verified" in f for f in report.failures)

    def test_server_incorrect_fails(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        cur["server"]["incorrect"] = 2
        report = compare_snapshots(base, cur)
        assert not report.ok

    def test_vanished_query_fails(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        del cur["families"]["star_ds"]["queries"]["ds2"]
        report = compare_snapshots(base, cur)
        assert not report.ok
        assert any("vanished" in f for f in report.failures)

    def test_vanished_family_fails(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        del cur["families"]["sensor_edge"]
        report = compare_snapshots(base, cur)
        assert not report.ok

    def test_throughput_regression_fails(self):
        base = make_snapshot(pr=5, qps=100.0)
        cur = make_snapshot(pr=6, qps=40.0)
        report = compare_snapshots(base, cur)
        assert not report.ok
        assert any("throughput" in f for f in report.failures)

    def test_improvement_reported(self):
        base = make_snapshot(pr=5, wall=0.2)
        cur = make_snapshot(pr=6, wall=0.05)
        report = compare_snapshots(base, cur)
        assert report.ok
        assert report.improvements

    def test_hit_rate_drop_warns(self):
        base = make_snapshot(pr=5)
        cur = make_snapshot(pr=6)
        cur["server"]["plan_cache_hit_rate"] = 0.1
        report = compare_snapshots(base, cur)
        assert report.ok
        assert any("hit rate" in w for w in report.warnings)


# ----------------------------------------------------------------------
# Snapshot files
# ----------------------------------------------------------------------
class TestSnapshotFiles:
    def test_write_load_roundtrip(self, tmp_path):
        doc = make_snapshot(pr=6)
        path = snapshot_path(str(tmp_path), 6)
        write_snapshot(doc, path)
        assert load_snapshot(path) == doc

    def test_write_refuses_invalid(self, tmp_path):
        doc = make_snapshot()
        del doc["server"]
        with pytest.raises(ValueError, match="invalid snapshot"):
            write_snapshot(doc, str(tmp_path / "BENCH_9.json"))

    def test_load_refuses_invalid(self, tmp_path):
        path = tmp_path / "BENCH_9.json"
        path.write_text(json.dumps({"schema_version": 1}))
        with pytest.raises(ValueError, match="not a valid snapshot"):
            load_snapshot(str(path))

    def test_find_latest(self, tmp_path):
        for pr in (3, 5, 4):
            write_snapshot(make_snapshot(pr=pr), snapshot_path(str(tmp_path), pr))
        assert find_latest_snapshot(str(tmp_path)).endswith("BENCH_5.json")
        assert find_latest_snapshot(
            str(tmp_path), before_pr=5
        ).endswith("BENCH_4.json")
        assert find_latest_snapshot(str(tmp_path), before_pr=3) is None

    def test_find_latest_empty_dir(self, tmp_path):
        assert find_latest_snapshot(str(tmp_path)) is None

    def test_committed_snapshot_is_valid(self):
        """The repo's committed trajectory must always load cleanly."""
        directory = os.path.join(REPO_ROOT, "benchmarks", "snapshots")
        latest = find_latest_snapshot(directory)
        assert latest is not None, "no committed BENCH_*.json"
        doc = load_snapshot(latest)
        assert set(doc["families"]) >= {"tpch", "star_ds", "sensor_edge"}
        assert doc["correctness"]["mismatches"] == []


# ----------------------------------------------------------------------
# Gate CLI exit codes
# ----------------------------------------------------------------------
def run_gate(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "bench_gate.py"),
         *argv],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )


class TestGateCli:
    def test_clean_rerun_exits_zero(self, tmp_path):
        write_snapshot(make_snapshot(pr=5), snapshot_path(str(tmp_path), 5))
        current = str(tmp_path / "fresh.json")
        write_snapshot(make_snapshot(pr=6), current)
        proc = run_gate("--current", current, "--snapshot-dir", str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout

    def test_injected_regression_exits_nonzero(self, tmp_path):
        write_snapshot(make_snapshot(pr=5), snapshot_path(str(tmp_path), 5))
        doc = make_snapshot(pr=6)
        doc["families"]["star_ds"]["queries"]["ds1"]["wall_s"] *= 2.0
        current = str(tmp_path / "fresh.json")
        write_snapshot(doc, current)
        proc = run_gate("--current", current, "--snapshot-dir", str(tmp_path))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAIL" in proc.stdout

    def test_bootstrap_without_baseline(self, tmp_path):
        current = str(tmp_path / "fresh.json")
        write_snapshot(make_snapshot(pr=6), current)
        proc = run_gate("--current", current, "--snapshot-dir", str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bootstrap" in proc.stdout

    def test_missing_current_exits_two(self, tmp_path):
        proc = run_gate("--current", str(tmp_path / "nope.json"))
        assert proc.returncode == 2


# ----------------------------------------------------------------------
# BenchResult rename (satellite): makespan + deprecation alias
# ----------------------------------------------------------------------
class TestBenchResultRename:
    def make(self, mode):
        return BenchResult("q", "lolepop", 4, 1.0, 0.4, 10, mode)

    def test_makespan_field(self):
        assert self.make("parallel").makespan == 0.4

    def test_simulated_time_alias_warns(self):
        result = self.make("simulated")
        with pytest.warns(DeprecationWarning, match="makespan"):
            assert result.simulated_time == result.makespan

    def test_time_semantics_unchanged(self):
        assert self.make("parallel").time == 0.4
        assert self.make("simulated").time == 0.4  # threads > 1 → makespan
        one_thread = BenchResult("q", "lolepop", 1, 1.0, 0.4, 10, "simulated")
        assert one_thread.time == 1.0


# ----------------------------------------------------------------------
# Miniature end-to-end snapshot build
# ----------------------------------------------------------------------
def test_build_snapshot_end_to_end():
    """One query per family at the smallest scale: the built document is
    schema-valid, verified, and gates cleanly against itself."""
    from repro.bench.snapshot import build_snapshot

    doc = build_snapshot(
        pr=999,
        scale_factor=0.002,
        threads=2,
        repeats=1,
        queries_per_family=1,
        server_duration_s=0.4,
        server_clients=2,
    )
    assert validate_snapshot(doc) == []
    assert doc["correctness"]["mismatches"] == []
    # 3 corpus queries + the 5 cold-vs-warm reuse queries.
    assert doc["correctness"]["queries_verified"] == 8
    for family in ("tpch", "star_ds", "sensor_edge"):
        entries = doc["families"][family]["queries"]
        assert len(entries) == 1
        for entry in entries.values():
            assert entry["verified"]
    assert doc["reuse"]["manager"]["hits"] > 0
    for entry in doc["reuse"]["queries"].values():
        assert entry["verified"]
    rerun = copy.deepcopy(doc)
    rerun["pr"] = 1000
    report = compare_snapshots(doc, rerun)
    assert report.ok, report.render()
