"""Shared assertion helpers for the test suite."""

from __future__ import annotations

ENGINES = ["lolepop", "monolithic", "columnar"]


def normalized_rows(result):
    """Engine-order-independent, float-rounded row list for comparisons."""
    rows = result.rows() if hasattr(result, "rows") else result
    out = []
    for row in rows:
        out.append(
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        )
    return sorted(
        out, key=lambda t: tuple((x is None, str(type(x)), str(x)) for x in t)
    )


def assert_engines_agree(db, sql, engines=None, config=None):
    """All listed engines must reproduce the naive row engine's answer."""
    reference = normalized_rows(db.sql(sql, engine="naive"))
    for engine in engines if engines is not None else ENGINES:
        got = normalized_rows(db.sql(sql, engine=engine, config=config))
        assert got == reference, f"{engine} diverges on: {sql}"
    return reference
