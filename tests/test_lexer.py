"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sql import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_keywords_fold_case(self):
        assert kinds("SeLeCt FROM") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.KEYWORD, "from"),
        ]

    def test_identifiers_fold_case(self):
        assert kinds("MyCol") == [(TokenType.IDENT, "mycol")]

    def test_quoted_identifier_preserves_case(self):
        assert kinds('"MyCol"') == [(TokenType.IDENT, "MyCol")]

    def test_numbers(self):
        assert kinds("1 2.5 .5 1e3 2E-2") == [
            (TokenType.INTEGER, "1"),
            (TokenType.FLOAT, "2.5"),
            (TokenType.FLOAT, ".5"),
            (TokenType.FLOAT, "1e3"),
            (TokenType.FLOAT, "2E-2"),
        ]

    def test_string_with_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_symbols(self):
        assert [v for _, v in kinds("<= >= <> != = ||")] == [
            "<=", ">=", "<>", "<>", "=", "||",
        ]

    def test_line_comment(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* forever")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a ; b")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexError):
            tokenize('"abc')
