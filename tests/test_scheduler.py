"""Tests for the simulated morsel scheduler and execution traces."""

import pytest

from repro.execution import ExecutionTrace, SimulatedScheduler
from repro.execution.scheduler import SPLIT_OVERHEAD
from repro.execution.trace import TraceRecord


class TestScheduling:
    def test_results_in_item_order(self):
        sched = SimulatedScheduler(4)
        out = sched.run_region("op", "p0", [3, 1, 2], lambda x: x * 10)
        assert out == [30, 10, 20]

    def test_serial_time_accumulates(self):
        sched = SimulatedScheduler(2)
        sched.account("op", "p0", [0.5, 0.5])
        assert sched.serial_time == pytest.approx(1.0)

    def test_parallel_makespan_lpt(self):
        sched = SimulatedScheduler(2)
        sched.account("op", "p0", [4.0, 3.0, 2.0, 1.0])
        # LPT on 2 workers: {4,1} and {3,2} -> makespan 5
        assert sched.sim_time == pytest.approx(5.0)

    def test_single_thread_equals_serial(self):
        sched = SimulatedScheduler(1)
        sched.account("op", "p0", [1.0, 2.0, 3.0])
        assert sched.sim_time == pytest.approx(sched.serial_time)

    def test_regions_are_barriers(self):
        sched = SimulatedScheduler(2)
        sched.account("a", "p0", [2.0])  # one thread busy until t=2
        sched.account("b", "p1", [1.0])  # must start after the barrier
        assert sched.sim_time == pytest.approx(3.0)

    def test_nonsplittable_large_item_dominates(self):
        sched = SimulatedScheduler(8)
        sched.account("sort", "p0", [8.0], splittable=False)
        assert sched.sim_time == pytest.approx(8.0)

    def test_splittable_item_parallelizes_with_overhead(self):
        sched = SimulatedScheduler(8)
        sched.account("sort", "p0", [8.0], splittable=True)
        assert sched.sim_time == pytest.approx(8.0 * (1 + SPLIT_OVERHEAD) / 8)

    def test_tiny_splittable_item_not_split(self):
        sched = SimulatedScheduler(8)
        sched.account("sort", "p0", [0.0001], splittable=True)
        assert sched.sim_time == pytest.approx(0.0001)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            SimulatedScheduler(0)

    def test_reset(self):
        sched = SimulatedScheduler(2, ExecutionTrace())
        sched.account("op", "p0", [1.0])
        sched.reset()
        assert sched.sim_time == 0.0
        assert sched.serial_time == 0.0
        assert sched.trace.records == []


class TestTrace:
    def make_trace(self):
        trace = ExecutionTrace()
        sched = SimulatedScheduler(2, trace)
        sched.account("partition", "p0", [1.0, 1.0])
        sched.account("sort", "p1", [2.0])
        return trace

    def test_records_collected(self):
        trace = self.make_trace()
        assert len(trace.records) == 3
        assert trace.operators() == ["partition", "sort"]

    def test_makespan(self):
        trace = self.make_trace()
        assert trace.makespan == pytest.approx(3.0)

    def test_total_work_per_operator(self):
        trace = self.make_trace()
        assert trace.total_work("partition") == pytest.approx(2.0)
        assert trace.total_work() == pytest.approx(4.0)

    def test_by_thread(self):
        trace = self.make_trace()
        threads = trace.by_thread()
        assert set(threads) == {0, 1}

    def test_render_gantt(self):
        text = self.make_trace().render(width=40)
        assert "makespan" in text
        assert "T0 |" in text and "T1 |" in text

    def test_render_empty(self):
        assert ExecutionTrace().render() == "(empty trace)"

    def test_record_duration(self):
        record = TraceRecord(0, 1.0, 2.5, "op", "p0")
        assert record.duration == pytest.approx(1.5)
