"""Unit tests for the tuple buffer (the paper's central data structure)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.storage import Batch, TupleBuffer
from repro.storage.keys import partition_ids
from repro.types import DataType, Schema
from repro.storage.column import Column

SCHEMA = Schema.of(("k", "int64"), ("v", "float64"))


def make_batch(ks, vs):
    return Batch.from_pydict(SCHEMA, {"k": ks, "v": vs})


class TestPartitioning:
    def test_rows_preserved(self):
        buffer = TupleBuffer(SCHEMA, 4, ("k",))
        buffer.append_partitioned(make_batch([1, 2, 3, 4, 5], [0.1] * 5))
        assert buffer.num_rows == 5

    def test_keys_stay_partition_local(self):
        buffer = TupleBuffer(SCHEMA, 4, ("k",))
        buffer.append_partitioned(make_batch([7, 8, 7, 9, 7], [0.0] * 5))
        for partition in buffer.partitions:
            if partition.num_rows == 0:
                continue
            ks = set(partition.compact().column("k").to_pylist())
            for k in ks:
                expected = partition_ids(
                    [Column.from_values(DataType.INT64, [k])], 4
                )[0]
                assert buffer.partitions[expected] is partition

    def test_unpartitioned_goes_to_partition_zero(self):
        buffer = TupleBuffer(SCHEMA, 4)
        buffer.append_partitioned(make_batch([1, 2], [0.0, 0.0]))
        assert buffer.partitions[0].num_rows == 2

    def test_zero_partitions_rejected(self):
        with pytest.raises(ExecutionError):
            TupleBuffer(SCHEMA, 0)


class TestChunkLists:
    def test_compaction_merges_chunks(self):
        buffer = TupleBuffer(SCHEMA, 1)
        buffer.partitions[0].append(make_batch([1], [0.1]))
        buffer.partitions[0].append(make_batch([2], [0.2]))
        assert not buffer.partitions[0].is_compacted
        chunk = buffer.partitions[0].compact()
        assert len(chunk) == 2
        assert buffer.partitions[0].is_compacted

    def test_empty_partition_compacts_to_empty_chunk(self):
        buffer = TupleBuffer(SCHEMA, 1)
        assert len(buffer.partitions[0].compact()) == 0

    def test_append_after_permutation_rejected(self):
        buffer = TupleBuffer(SCHEMA, 1)
        buffer.partitions[0].append(make_batch([2, 1], [0.1, 0.2]))
        buffer.partitions[0].sort_permutation(["k"], [False])
        with pytest.raises(ExecutionError):
            buffer.partitions[0].append(make_batch([3], [0.3]))


class TestSortAccessPaths:
    def test_inplace_and_permutation_agree(self):
        data = ([3, 1, 2, 1], [0.3, 0.1, 0.2, 0.15])
        a = TupleBuffer(SCHEMA, 1)
        a.partitions[0].append(make_batch(*data))
        a.partitions[0].sort_inplace(["k", "v"], [False, False])
        b = TupleBuffer(SCHEMA, 1)
        b.partitions[0].append(make_batch(*data))
        b.partitions[0].sort_permutation(["k", "v"], [False, False])
        assert list(a.partitions[0].ordered_batch().rows()) == list(
            b.partitions[0].ordered_batch().rows()
        )

    def test_permutation_keeps_key_cache(self):
        buffer = TupleBuffer(SCHEMA, 1)
        buffer.partitions[0].append(make_batch([2, 1], [0.2, 0.1]))
        buffer.partitions[0].sort_permutation(["k"], [False])
        assert "k" in buffer.partitions[0].key_cache
        assert buffer.partitions[0].key_cache["k"].to_pylist() == [1, 2]


class TestOrderingProperty:
    def test_prefix_satisfaction(self):
        buffer = TupleBuffer(SCHEMA, 1)
        buffer.set_ordering((("k", False), ("v", False)))
        assert buffer.ordering_satisfies((("k", False),))
        assert buffer.ordering_satisfies((("k", False), ("v", False)))
        assert not buffer.ordering_satisfies((("v", False),))
        assert not buffer.ordering_satisfies((("k", True),))
        assert not buffer.ordering_satisfies(
            (("k", False), ("v", False), ("k", False))
        )


class TestAddColumns:
    def test_window_write_back(self):
        buffer = TupleBuffer(SCHEMA, 2, ("k",))
        buffer.append_partitioned(make_batch([1, 2, 3, 4], [0.1, 0.2, 0.3, 0.4]))
        per_partition = []
        for partition in buffer.partitions:
            n = partition.num_rows
            per_partition.append(
                [Column.from_values(DataType.INT64, list(range(n)))]
            )
        buffer.add_columns([("rn", DataType.INT64)], per_partition)
        assert buffer.schema.names() == ["k", "v", "rn"]
        assert buffer.num_rows == 4

    def test_length_mismatch_rejected(self):
        buffer = TupleBuffer(SCHEMA, 1)
        buffer.partitions[0].append(make_batch([1, 2], [0.1, 0.2]))
        with pytest.raises(ExecutionError):
            buffer.add_columns(
                [("x", DataType.INT64)],
                [[Column.from_values(DataType.INT64, [1])]],
            )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 9), min_size=1, max_size=50),
    st.integers(1, 8),
)
def test_partition_scatter_is_lossless(ks, parts):
    """Property: partitioning scatters rows without loss or duplication."""
    vs = [float(i) for i in range(len(ks))]
    buffer = TupleBuffer(SCHEMA, parts, ("k",))
    buffer.append_partitioned(make_batch(ks, vs))
    collected = sorted(
        v for p in buffer.partitions for _, v in p.ordered_batch().rows()
    )
    assert collected == vs
