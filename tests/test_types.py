"""Unit tests for the type system (repro.types)."""

import datetime

import pytest

from repro.errors import BindError, CatalogError
from repro.types import (
    DataType,
    Field,
    Schema,
    common_numeric_type,
    date_to_days,
    days_to_date,
    parse_type,
)


class TestParseType:
    def test_canonical_names(self):
        assert parse_type("int64") is DataType.INT64
        assert parse_type("float64") is DataType.FLOAT64
        assert parse_type("string") is DataType.STRING
        assert parse_type("bool") is DataType.BOOL
        assert parse_type("date") is DataType.DATE

    def test_sql_aliases(self):
        assert parse_type("BIGINT") is DataType.INT64
        assert parse_type("double") is DataType.FLOAT64
        assert parse_type("text") is DataType.STRING
        assert parse_type("boolean") is DataType.BOOL

    def test_parameterized_types(self):
        assert parse_type("varchar(32)") is DataType.STRING
        assert parse_type("decimal(12, 2)") is DataType.FLOAT64

    def test_passthrough(self):
        assert parse_type(DataType.DATE) is DataType.DATE

    def test_unknown_type(self):
        with pytest.raises(CatalogError):
            parse_type("blob")


class TestNumericPromotion:
    def test_int_int(self):
        assert common_numeric_type(DataType.INT64, DataType.INT64) is DataType.INT64

    def test_int_float(self):
        assert common_numeric_type(DataType.INT64, DataType.FLOAT64) is DataType.FLOAT64

    def test_non_numeric_rejected(self):
        with pytest.raises(BindError):
            common_numeric_type(DataType.STRING, DataType.INT64)


class TestDates:
    def test_epoch(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_roundtrip(self):
        day = date_to_days("1995-06-17")
        assert days_to_date(day) == datetime.date(1995, 6, 17)

    def test_string_and_date_agree(self):
        assert date_to_days("1992-01-01") == date_to_days(datetime.date(1992, 1, 1))

    def test_int_passthrough(self):
        assert date_to_days(1234) == 1234

    def test_invalid_string(self):
        with pytest.raises(BindError):
            date_to_days("not-a-date")

    def test_bool_rejected(self):
        with pytest.raises(BindError):
            date_to_days(True)


class TestSchema:
    def test_of_and_lookup(self):
        schema = Schema.of(("a", "int64"), ("B", "string"))
        assert schema.names() == ["a", "B"]
        assert schema.index_of("b") == 1  # case-insensitive
        assert schema["a"].dtype is DataType.INT64

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema.of(("a", "int64"), ("A", "string"))

    def test_unknown_column(self):
        schema = Schema.of(("a", "int64"))
        with pytest.raises(CatalogError):
            schema.index_of("zz")
        assert schema.maybe_index_of("zz") is None

    def test_concat_renames_collisions(self):
        left = Schema.of(("a", "int64"), ("b", "int64"))
        right = Schema.of(("b", "string"), ("c", "string"))
        merged = left.concat(right)
        assert merged.names() == ["a", "b", "b_1", "c"]
        assert merged["b_1"].dtype is DataType.STRING

    def test_concat_double_collision(self):
        left = Schema.of(("x", "int64"), ("x_1", "int64"))
        right = Schema.of(("x", "string"))
        merged = left.concat(right)
        assert merged.names() == ["x", "x_1", "x_2"]

    def test_select(self):
        schema = Schema.of(("a", "int64"), ("b", "string"), ("c", "bool"))
        sub = schema.select(["c", "a"])
        assert sub.names() == ["c", "a"]

    def test_equality(self):
        assert Schema.of(("a", "int64")) == Schema.of(("a", "int64"))
        assert Schema.of(("a", "int64")) != Schema.of(("a", "float64"))

    def test_field_equality_and_hash(self):
        assert Field("a", "int64") == Field("a", DataType.INT64)
        assert hash(Field("a", "int64")) == hash(Field("a", DataType.INT64))
