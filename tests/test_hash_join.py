"""Tests for the vectorized hash join."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import HashJoinTable
from repro.storage import Batch
from repro.types import Schema

LEFT = Schema.of(("k", "int64"), ("l", "string"))
RIGHT = Schema.of(("k", "int64"), ("r", "string"))


def left_batch(ks, ls):
    return Batch.from_pydict(LEFT, {"k": ks, "l": ls})


def right_batch(ks, rs):
    return Batch.from_pydict(RIGHT, {"k": ks, "r": rs})


class TestInnerJoin:
    def test_basic_match_expansion(self):
        table = HashJoinTable(right_batch([1, 2, 2], ["a", "b", "c"]), ["k"])
        out = table.probe(left_batch([2, 3, 1], ["x", "y", "z"]), ["k"])
        rows = sorted(out.rows())
        assert rows == [(1, "z", 1, "a"), (2, "x", 2, "b"), (2, "x", 2, "c")]

    def test_null_keys_never_match(self):
        table = HashJoinTable(right_batch([1, None], ["a", "b"]), ["k"])
        out = table.probe(left_batch([1, None], ["x", "y"]), ["k"])
        assert sorted(out.rows()) == [(1, "x", 1, "a")]

    def test_schema_rename_on_collision(self):
        table = HashJoinTable(right_batch([1], ["a"]), ["k"])
        out = table.probe(left_batch([1], ["x"]), ["k"])
        assert out.schema.names() == ["k", "l", "k_1", "r"]

    def test_empty_build(self):
        table = HashJoinTable(right_batch([], []), ["k"])
        out = table.probe(left_batch([1], ["x"]), ["k"])
        assert len(out) == 0


class TestLeftJoin:
    def test_unmatched_rows_padded(self):
        table = HashJoinTable(right_batch([1], ["a"]), ["k"])
        out = table.probe(left_batch([1, 9], ["x", "y"]), ["k"], left_outer=True)
        rows = sorted(out.rows(), key=lambda r: r[0])
        assert rows[0] == (1, "x", 1, "a")
        assert rows[1] == (9, "y", None, None)


class TestSemiMask:
    def test_mask(self):
        table = HashJoinTable(right_batch([1, 1, 3], ["a", "b", "c"]), ["k"])
        mask = table.semi_mask(left_batch([1, 2, 3], ["x", "y", "z"]), ["k"])
        assert list(mask) == [True, False, True]


class TestStringKeys:
    def test_cross_batch_string_keys(self):
        """Regression: string keys must compare across build/probe batches."""
        build = Batch.from_pydict(
            Schema.of(("s", "string"), ("v", "int64")),
            {"s": ["HIGH", "LOW"], "v": [1, 2]},
        )
        probe = Batch.from_pydict(
            Schema.of(("s", "string")), {"s": ["LOW", "MED", "HIGH"]}
        )
        table = HashJoinTable(build, ["s"])
        out = table.probe(probe, ["s"])
        assert sorted(out.rows()) == [
            ("HIGH", "HIGH", 1),
            ("LOW", "LOW", 2),
        ]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 8), max_size=40),
    st.lists(st.integers(0, 8), max_size=40),
)
def test_inner_join_matches_nested_loop(build_keys, probe_keys):
    """Property: hash join output equals the nested-loop definition."""
    build = right_batch(build_keys, [f"b{i}" for i in range(len(build_keys))])
    probe = left_batch(probe_keys, [f"p{i}" for i in range(len(probe_keys))])
    if len(build) == 0:
        return
    table = HashJoinTable(build, ["k"])
    got = sorted(table.probe(probe, ["k"]).rows())
    expected = sorted(
        (pk, f"p{pi}", bk, f"b{bi}")
        for pi, pk in enumerate(probe_keys)
        for bi, bk in enumerate(build_keys)
        if pk == bk
    )
    assert got == expected
